"""Columnar match kernel and binary column sidecar (persistence v4).

PR 4-5 scaled matchmaking *across* processes; inside one shard the match
path was still a per-record Python loop over dict-shaped views.  This
module packs the numerically-coercible attribute values of a shard into
contiguous ``float64`` numpy columns so range and equality clauses
evaluate as boolean-mask vector operations — one C-speed pass over the
column instead of one Python verification per candidate — and persists
those columns as an mmap-loadable binary sidecar next to a format-v4
snapshot, so a million-record worker's match path is warm after page
faults instead of after re-deriving every column from parsed rows.

Exactness
=========

The kernel never changes query semantics; it only serves the clause
shapes for which a ``float64`` column of :func:`coerce_number` values is
*provably* equivalent to the row path:

- **Ordered clauses** (``>= > <= <`` and ranges): the language is
  fail-closed — a machine value that does not coerce can never satisfy
  an ordered clause.  Such values are stored as NaN, and NaN compares
  False under every numpy comparison, so the mask is exact.
- **Equality with a numerically-coercible query value**: a machine
  value loosely equals a coercible query value only if it coerces to
  the same number (two equal strings either both coerce or neither
  does), *except* comma-separated multi-valued strings
  (``cms=sge,pbs``), whose element-wise equality a column cannot see.
  Rows holding comma values are tracked in a per-column **fuzzy set**
  and re-verified through the full clause set.
- Everything else — ``!=``, ``in``, equality against a non-coercible
  query value — is left to the row machinery: the database verifies the
  leftover clauses only on the rows the column masks admitted.

A bound on an attribute with **no column** proves the result empty: a
column is created the moment any record carries a coercible (or comma)
value for that attribute, so its absence means no current record can
satisfy an ordered or coercible-equality clause on it.

Sidecar format (v4)
===================

``<snapshot>.cols`` is a length-prefixed binary file sharing the v3
snapshot's name table (sidecar row *i* is machines row *i*):

- magic ``RWPCOL1\\n``, then a u32 little-endian header length and a
  JSON header: row count, a CRC over the machine-name table (ties the
  sidecar to its snapshot), and per column its attribute name, dtype
  (``<f8``), block offset, byte length, CRC-32, and fuzzy row ids.
- each column block at an aligned offset: a u64 little-endian byte
  length (redundant framing check) followed by the raw little-endian
  values.

The loader mmaps the file once and materialises columns *lazily*: a
column's CRC is checked on the first clause that touches it, so cold
start pays page faults only for the attributes queries actually use.
Any validation failure raises :class:`ColumnDataError`, which callers
treat as "silently rebuild from rows" — the sidecar, like the v3 index
image, is a startup optimisation, never a source of truth.

Mutations after a sidecar attach copy-on-write: a monitoring refresh
materialises only the touched columns; adding or replacing whole
records thaws the store (row topology changes every column).
"""

from __future__ import annotations

import json
import mmap
import math
import struct
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.database.indexes import coerce_number
from repro.errors import DatabaseError

try:  # pragma: no cover - exercised via the HAVE_NUMPY branch in tests
    import numpy as np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less install
    np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "ColumnDataError",
    "ColumnStore",
    "ColumnarProgram",
    "warn_numpy_missing",
    "SIDECAR_MAGIC",
]

#: First bytes of every column sidecar file.
SIDECAR_MAGIC = b"RWPCOL1\n"
#: Column blocks start on this alignment (keeps float64 views aligned).
_ALIGN = 16

_NAN = float("nan")
#: Characters that can open a string float() accepts (sign, digit,
#: decimal point, inf/nan); a cheap guard so bulk column builds do not
#: pay a try/except per non-numeric string (machine names, arches...).
_NUM_LEAD = frozenset("0123456789+-.iInN")

_warned_no_numpy = False


def warn_numpy_missing() -> None:
    """One-time warning that the columnar engine is degraded off."""
    global _warned_no_numpy
    if not _warned_no_numpy:
        _warned_no_numpy = True
        warnings.warn(
            "numpy is not installed: the columnar match engine is "
            "disabled and matching uses the row path "
            "(pip install 'repro[columnar]' to enable it)",
            RuntimeWarning, stacklevel=3)


class ColumnDataError(DatabaseError):
    """A column sidecar failed validation (magic, CRC, framing, or name
    table mismatch).  Callers rebuild the columns from records."""


def _fast_coerce(value: Any) -> Optional[float]:
    """:func:`coerce_number`, with a cheap reject for the common
    non-numeric strings so bulk builds skip the try/except."""
    t = type(value)
    if t is float:
        return value
    if t is int:
        return float(value)
    if t is str:
        s = value.strip()
        if not s:
            return None
        lead = s[0]
        if lead not in _NUM_LEAD and not lead.isdigit():
            return None  # float() could not accept this first character
        try:
            return float(s)
        except ValueError:
            return None
    return coerce_number(value)  # bools, numeric subclasses, None, ...


def _names_crc(names: Sequence[str]) -> int:
    """CRC tying a sidecar to the snapshot's machine-name table."""
    return zlib.crc32("\x00".join(names).encode("utf-8"))


class _Column:
    """One attribute's values (``float64``, NaN = not coercible) plus
    the fuzzy row set (comma-separated multi-valued strings)."""

    __slots__ = ("values", "fuzzy", "writable")

    def __init__(self, values, fuzzy: Optional[Set[int]] = None,
                 *, writable: bool = True):
        self.values = values
        self.fuzzy: Set[int] = fuzzy if fuzzy is not None else set()
        self.writable = writable


class _SidecarHandle:
    """A not-yet-validated column inside the mmapped sidecar."""

    __slots__ = ("buf", "offset", "nbytes", "crc", "fuzzy")

    def __init__(self, buf, offset: int, nbytes: int, crc: int,
                 fuzzy: Set[int]):
        self.buf = buf
        self.offset = offset
        self.nbytes = nbytes
        self.crc = crc
        self.fuzzy = fuzzy


class ColumnarProgram:
    """A clause set compiled against a :class:`ColumnStore`.

    ``bounds`` and ``col_eqs`` evaluate as column masks; ``leftover``
    (non-coercible equalities + the residual) is verified per admitted
    row by the database.  ``empty`` short-circuits: some columnar clause
    references an attribute no record has ever carried a coercible
    value for, so nothing can match.
    """

    __slots__ = ("bounds", "col_eqs", "eq_clauses", "leftover", "empty")

    def __init__(self, bounds, col_eqs, eq_clauses, leftover, empty):
        self.bounds = bounds          # Tuple[AttrBound, ...]
        self.col_eqs = col_eqs        # [(attr, float query value), ...]
        self.eq_clauses = eq_clauses  # non-columnar equality clauses
        self.leftover = leftover      # ClauseSet re-verified per row
        self.empty = empty


class ColumnStore:
    """Contiguous ``float64`` columns over a shard's attribute views.

    Maintained incrementally by :class:`~repro.database.whitepages
    .WhitePagesDatabase` under its registry lock (the store itself is
    not thread-safe), mirroring the attribute-index catalog's hook
    points: ``add``/``remove``/``replace``/``replace_dynamic`` plus
    ``set_free`` for take/release.  Rows are slots: removal tombstones
    a row (validity mask) and registration reuses free slots, so
    columns never compact.
    """

    def __init__(self, records: Iterable[Any] = ()):
        if not HAVE_NUMPY:
            raise ColumnDataError("numpy is required for ColumnStore")
        self._names: List[Optional[str]] = []   # row -> machine name
        self._row_of: Optional[Dict[str, int]] = {}
        self._free_slots: List[int] = []
        self._cols: Dict[str, _Column] = {}
        self._pending: Dict[str, _SidecarHandle] = {}
        self._mmap = None                       # keeps sidecar pages alive
        self._size = 0                          # rows allocated (<= _cap)
        self._cap = 0
        self._valid = np.zeros(0, dtype=bool)
        self._free = np.zeros(0, dtype=bool)
        records = list(records)
        if records:
            self._bulk_build(records)

    # -- construction --------------------------------------------------------

    def _bulk_build(self, records: List[Any]) -> None:
        n = len(records)
        self._size = self._cap = n
        self._names = [r.machine_name for r in records]
        self._row_of = {name: i for i, name in enumerate(self._names)}
        self._valid = np.ones(n, dtype=bool)
        self._free = np.ones(n, dtype=bool)
        # Built-in numeric fields are dense: one C-speed pass each.
        for attr, values in (
            ("load", [r.current_load for r in records]),
            ("jobs", [r.active_jobs for r in records]),
            ("freememory", [r.available_memory_mb for r in records]),
            ("freeswap", [r.available_swap_mb for r in records]),
            ("speed", [r.effective_speed for r in records]),
            ("cpus", [r.num_cpus for r in records]),
            ("maxload", [r.max_allowed_load for r in records]),
        ):
            self._cols[attr] = _Column(np.asarray(values, dtype=np.float64))
        # Admin parameters are sparse and may shadow the built-ins;
        # ``name``/``state`` almost never coerce and are handled by the
        # same per-value loop for the pathological cases that do.
        fast = _fast_coerce
        for row, rec in enumerate(records):
            for attr, value in (("name", rec.machine_name),
                                ("state", str(rec.state))):
                num = fast(value)
                if num is not None:
                    self._cell(attr).values[row] = num
            for attr, value in rec.admin_parameters.items():
                self._set_cell(row, attr, value)

    @classmethod
    def from_records(cls, records: Iterable[Any]) -> "ColumnStore":
        return cls(records)

    # -- growth / thaw -------------------------------------------------------

    def _grow(self) -> None:
        new_cap = max(self._cap * 2, 16)
        self._valid = self._padded(self._valid, new_cap, False)
        self._free = self._padded(self._free, new_cap, False)
        for col in self._cols.values():
            col.values = self._padded(col.values, new_cap, _NAN)
            col.writable = True
        self._cap = new_cap

    @staticmethod
    def _padded(arr, new_cap: int, fill):
        out = np.full(new_cap, fill, dtype=arr.dtype)
        out[:len(arr)] = arr
        return out

    def _thaw_column(self, attr: str) -> _Column:
        """Materialise one column for writing (copy-on-write)."""
        col = self._column(attr)
        if col is None:
            col = self._cols[attr] = _Column(
                np.full(self._cap, _NAN, dtype=np.float64))
        elif not col.writable:
            col.values = self._padded(col.values, self._cap, _NAN)
            col.writable = True
        return col

    def _thaw_all(self) -> None:
        """Materialise every column (row topology is about to change)."""
        for attr in list(self._pending):
            self._thaw_column(attr)
        for attr, col in self._cols.items():
            if not col.writable:
                self._thaw_column(attr)
        self._mmap = None

    def _cell(self, attr: str) -> _Column:
        return self._thaw_column(attr)

    def _rowmap(self) -> Dict[str, int]:
        if self._row_of is None:
            self._row_of = {name: i for i, name in enumerate(self._names)
                            if name is not None}
        return self._row_of

    # -- column access -------------------------------------------------------

    def _column(self, attr: str) -> Optional[_Column]:
        """The live column for ``attr``, validating a pending sidecar
        column on first touch; None when no record ever carried a
        coercible (or comma) value for the attribute."""
        col = self._cols.get(attr)
        if col is not None:
            return col
        handle = self._pending.pop(attr, None)
        if handle is None:
            return None
        buf = handle.buf
        (framed,) = struct.unpack_from("<Q", buf, handle.offset)
        if framed != handle.nbytes:
            raise ColumnDataError(
                f"column {attr!r}: frame length {framed} != header "
                f"{handle.nbytes}")
        start = handle.offset + 8
        span = memoryview(buf)[start:start + handle.nbytes]
        if len(span) != handle.nbytes:
            raise ColumnDataError(f"column {attr!r}: truncated block")
        if zlib.crc32(span) != handle.crc:
            raise ColumnDataError(f"column {attr!r}: CRC mismatch")
        values = np.frombuffer(span, dtype="<f8")
        if len(values) != self._size:
            raise ColumnDataError(
                f"column {attr!r}: {len(values)} values for "
                f"{self._size} rows")
        col = _Column(values, handle.fuzzy, writable=False)
        self._cols[attr] = col
        return col

    def has_column(self, attr: str) -> bool:
        return attr in self._cols or attr in self._pending

    # -- cell writes ---------------------------------------------------------

    def _set_cell(self, row: int, attr: str, value: Any) -> None:
        num = _fast_coerce(value)
        fuzzy = type(value) is str and "," in value
        if num is None and not fuzzy and not self.has_column(attr):
            return  # non-coercible value on a column-less attribute
        col = self._cell(attr)
        col.values[row] = num if num is not None else _NAN
        if fuzzy:
            col.fuzzy.add(row)
        else:
            col.fuzzy.discard(row)

    def _clear_row(self, row: int) -> None:
        """Reset one row's cells; caller has thawed every column."""
        for col in self._cols.values():
            col.values[row] = _NAN
            col.fuzzy.discard(row)

    # -- database hooks (caller holds the registry lock) ---------------------

    def add(self, record: Any) -> None:
        name = record.machine_name
        rowmap = self._rowmap()
        self._thaw_all()  # row topology changes: every column is written
        if self._free_slots:
            row = self._free_slots.pop()
            self._names[row] = name
            self._clear_row(row)  # reused slot may hold stale cells
        else:
            if self._size == self._cap:
                self._grow()
            row = self._size
            self._size += 1
            self._names.append(name)
        rowmap[name] = row
        self._valid[row] = True
        self._free[row] = True
        self._fill_row(row, record)

    def _fill_row(self, row: int, record: Any) -> None:
        view = record.attribute_view()
        for attr, value in view.items():
            self._set_cell(row, attr, value)

    def remove(self, machine_name: str) -> None:
        row = self._rowmap().pop(machine_name, None)
        if row is None:
            return
        self._valid[row] = False
        self._free[row] = False
        self._names[row] = None
        # Tombstoned cells are masked out by the validity array, so the
        # values can stay (frozen sidecar columns stay frozen); only the
        # fuzzy bookkeeping must forget the row.
        for col in self._cols.values():
            col.fuzzy.discard(row)
        for handle in self._pending.values():
            handle.fuzzy.discard(row)
        self._free_slots.append(row)

    def replace(self, record: Any) -> None:
        row = self._rowmap().get(record.machine_name)
        if row is None:
            self.add(record)
            return
        self._thaw_all()  # a full replace rewrites every column's cell
        self._clear_row(row)
        self._fill_row(row, record)

    #: Dynamic record fields that surface in the attribute view, with
    #: their view key and value transform (mirrors the catalog's
    #: ``replace_dynamic`` map so the two hooks can never disagree on
    #: which attribute a monitoring field feeds).
    _DYNAMIC_VIEW_ATTRS = {
        "current_load": ("load", lambda r: r.current_load),
        "active_jobs": ("jobs", lambda r: r.active_jobs),
        "available_memory_mb": ("freememory",
                                lambda r: r.available_memory_mb),
        "available_swap_mb": ("freeswap", lambda r: r.available_swap_mb),
        "state": ("state", lambda r: str(r.state)),
    }

    def replace_dynamic(self, record: Any,
                        changed_fields: Iterable[str]) -> None:
        """Write only the columns a monitoring refresh touched.

        The columnar analogue of the catalog's field-targeted
        ``replace_dynamic``: a load refresh writes one float into one
        (copy-on-write-materialised) column — no row-mask rebuild, and
        sidecar-frozen columns the refresh does not name stay frozen.
        """
        row = self._rowmap().get(record.machine_name)
        if row is None:
            self.add(record)
            return
        admin = record.admin_parameters
        for field_name in changed_fields:
            spec = self._DYNAMIC_VIEW_ATTRS.get(field_name)
            if spec is None:
                continue  # not a view attribute (e.g. last_update_time)
            attr, value_of = spec
            if attr in admin:
                continue  # admin parameter shadows the built-in field
            self._set_cell(row, attr, value_of(record))

    def set_free(self, machine_name: str, free: bool) -> None:
        row = self._rowmap().get(machine_name)
        if row is not None:
            self._free[row] = free

    # -- evaluation ----------------------------------------------------------

    def compile_program(self, plan: Any) -> Optional[ColumnarProgram]:
        """Partition a plan's clauses into column masks and leftovers.

        None means no clause is columnar — the row path should run.
        The returned program's ``empty`` flag proves an empty result
        (a columnar clause on an attribute with no column).
        """
        from repro.core.plan import ClauseSet
        clause_set = plan.clause_set
        col_eqs: List[Tuple[str, float]] = []
        eq_clauses = []
        for clause in clause_set.equalities:
            qnum = coerce_number(clause.value)
            if qnum is None:
                eq_clauses.append(clause)
            else:
                col_eqs.append((clause.name, qnum))
        if not plan.bounds and not col_eqs:
            return None
        empty = any(not self.has_column(b.name) for b in plan.bounds) or \
            any(not self.has_column(attr) for attr, _q in col_eqs)
        leftover = ClauseSet(equalities=tuple(eq_clauses),
                             residual=clause_set.residual)
        return ColumnarProgram(plan.bounds, col_eqs, tuple(eq_clauses),
                               leftover, empty)

    def evaluate(self, program: ColumnarProgram, include_taken: bool
                 ) -> Tuple[List[str], List[str]]:
        """Run a program's column masks.

        Returns ``(admitted, fuzzy)``: machine names passing every
        columnar clause (plus the validity/free base mask), and names
        of comma-valued rows the masks could not decide (the caller
        verifies those against the *full* clause set).  Raises
        :class:`ColumnDataError` if a sidecar column fails validation.
        """
        n = self._size
        if n == 0 or program.empty:
            return [], []
        base = self._valid[:n] if include_taken else self._free[:n]
        mask = base.copy()
        fuzzy_rows: Set[int] = set()
        for bound in program.bounds:
            col = self._column(bound.name)
            if col is None:
                return [], []
            values = col.values[:n]
            if bound.lo != -math.inf or not bound.incl_lo:
                mask &= (values >= bound.lo) if bound.incl_lo \
                    else (values > bound.lo)
            if bound.hi != math.inf or not bound.incl_hi:
                mask &= (values <= bound.hi) if bound.incl_hi \
                    else (values < bound.hi)
            if bound.lo == -math.inf and bound.incl_lo \
                    and bound.hi == math.inf and bound.incl_hi:
                mask &= ~np.isnan(values)  # a pure-NaN guard bound
        for attr, qnum in program.col_eqs:
            col = self._column(attr)
            if col is None:
                return [], []
            mask &= col.values[:n] == qnum
            if col.fuzzy:
                fuzzy_rows.update(col.fuzzy)
        names = self._names
        admitted = [names[row] for row in np.nonzero(mask)[0].tolist()]
        fuzzy = [names[row] for row in fuzzy_rows
                 if row < n and base[row] and not mask[row]
                 and names[row] is not None]
        return admitted, fuzzy

    # -- sidecar persistence -------------------------------------------------

    def column_arrays(self, ordered_names: Sequence[str]
                      ) -> Dict[str, Tuple[Any, List[int]]]:
        """Every column's values (and fuzzy rows) permuted into
        ``ordered_names`` order — the snapshot's name table order."""
        rowmap = self._rowmap()
        perm = np.fromiter((rowmap[name] for name in ordered_names),
                           dtype=np.int64, count=len(ordered_names))
        inverse: Dict[int, int] = {int(old): new
                                   for new, old in enumerate(perm.tolist())}
        out: Dict[str, Tuple[Any, List[int]]] = {}
        for attr in sorted(set(self._cols) | set(self._pending)):
            col = self._column(attr)
            values = col.values[:self._size][perm] if len(perm) else \
                np.zeros(0, dtype=np.float64)
            fuzzy = sorted(inverse[row] for row in col.fuzzy
                           if row in inverse)
            out[attr] = (values, fuzzy)
        return out

    def to_sidecar_bytes(self, ordered_names: Sequence[str]
                         ) -> Tuple[bytes, int]:
        """Serialise the store; returns ``(file bytes, header CRC)``."""
        return build_sidecar(self.column_arrays(ordered_names),
                             ordered_names)

    @classmethod
    def from_sidecar(cls, path: Any, names: Sequence[str],
                     *, header_crc: Optional[int] = None) -> "ColumnStore":
        """Attach the sidecar at ``path`` for a snapshot whose machine
        names (in row order) are ``names``.

        Eagerly validates the magic, header CRC, row count, and name
        table; column blocks stay unread (and unvalidated) until first
        touched.  Raises :class:`ColumnDataError` on any mismatch.
        """
        if not HAVE_NUMPY:
            raise ColumnDataError("numpy is required for ColumnStore")
        try:
            fh = open(path, "rb")
        except OSError as exc:
            raise ColumnDataError(f"cannot open sidecar: {exc}") from exc
        with fh:
            try:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # Zero-length (empty fleet) files cannot be mmapped.
                buf = fh.read()
        header, payload_base = _parse_sidecar_header(buf,
                                                     header_crc=header_crc)
        rows = header["rows"]
        if rows != len(names):
            raise ColumnDataError(
                f"sidecar has {rows} rows, snapshot has {len(names)}")
        if header["names_crc"] != _names_crc(names):
            raise ColumnDataError("sidecar name table CRC mismatch")
        store = cls.__new__(cls)
        store._names = list(names)
        store._row_of = None  # built lazily: match-only cold starts skip it
        store._free_slots = []
        store._cols = {}
        store._mmap = buf if isinstance(buf, mmap.mmap) else None
        store._size = store._cap = rows
        store._valid = np.ones(rows, dtype=bool)
        store._free = np.ones(rows, dtype=bool)
        store._pending = {}
        for entry in header["columns"]:
            if entry.get("dtype") != "<f8":
                raise ColumnDataError(
                    f"column {entry.get('attr')!r}: unsupported dtype "
                    f"{entry.get('dtype')!r}")
            offset = payload_base + int(entry["offset"])
            nbytes = int(entry["nbytes"])
            if nbytes != rows * 8:
                raise ColumnDataError(
                    f"column {entry['attr']!r}: {nbytes} bytes for "
                    f"{rows} rows")
            if offset + 8 + nbytes > len(buf):
                raise ColumnDataError(
                    f"column {entry['attr']!r}: block past end of file")
            fuzzy = set(entry.get("fuzzy", ()))
            if fuzzy and (min(fuzzy) < 0 or max(fuzzy) >= rows):
                raise ColumnDataError(
                    f"column {entry['attr']!r}: fuzzy row out of range")
            store._pending[entry["attr"]] = _SidecarHandle(
                buf, offset, nbytes, int(entry["crc"]), fuzzy)
        return store

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "rows": int(self._valid.sum()),
            "slots": self._size,
            "columns": sorted(set(self._cols) | set(self._pending)),
            "frozen_columns": sorted(
                set(self._pending)
                | {a for a, c in self._cols.items() if not c.writable}),
        }


# ---------------------------------------------------------------------------
# Sidecar codec
# ---------------------------------------------------------------------------

def _pad_to(offset: int, align: int = _ALIGN) -> int:
    return (offset + align - 1) // align * align


def build_sidecar(columns: Dict[str, Tuple[Any, List[int]]],
                  ordered_names: Sequence[str]) -> Tuple[bytes, int]:
    """Encode ``{attr: (values in name order, fuzzy rows)}`` as sidecar
    file bytes; returns ``(bytes, header CRC)``."""
    blocks: List[bytes] = []
    entries: List[Dict[str, Any]] = []
    rel = 0
    for attr in sorted(columns):
        values, fuzzy = columns[attr]
        if HAVE_NUMPY:
            raw = np.ascontiguousarray(values, dtype="<f8").tobytes()
        else:  # pragma: no cover - writer requires numpy in practice
            raise ColumnDataError("numpy is required to build a sidecar")
        entries.append({
            "attr": attr,
            "dtype": "<f8",
            "offset": rel,
            "nbytes": len(raw),
            "crc": zlib.crc32(raw),
            "fuzzy": list(fuzzy),
        })
        block = struct.pack("<Q", len(raw)) + raw
        padded = _pad_to(len(block))
        blocks.append(block + b"\x00" * (padded - len(block)))
        rel += padded
    header = {
        "format": "repro.whitepages.columns",
        "version": 1,
        "rows": len(ordered_names),
        "names_crc": _names_crc(ordered_names),
        "columns": entries,
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    header_crc = zlib.crc32(header_bytes)
    prefix = SIDECAR_MAGIC + struct.pack("<I", len(header_bytes)) \
        + header_bytes
    payload_base = _pad_to(len(prefix))
    out = prefix + b"\x00" * (payload_base - len(prefix)) + b"".join(blocks)
    return out, header_crc


def _parse_sidecar_header(buf, *, header_crc: Optional[int] = None
                          ) -> Tuple[Dict[str, Any], int]:
    """Validate the fixed prefix; returns ``(header, payload base)``."""
    if len(buf) < len(SIDECAR_MAGIC) + 4:
        raise ColumnDataError("sidecar file truncated")
    if bytes(buf[:len(SIDECAR_MAGIC)]) != SIDECAR_MAGIC:
        raise ColumnDataError("bad sidecar magic")
    (header_len,) = struct.unpack_from("<I", buf, len(SIDECAR_MAGIC))
    start = len(SIDECAR_MAGIC) + 4
    header_bytes = bytes(buf[start:start + header_len])
    if len(header_bytes) != header_len:
        raise ColumnDataError("sidecar header truncated")
    if header_crc is not None and zlib.crc32(header_bytes) != header_crc:
        raise ColumnDataError("sidecar header CRC mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ColumnDataError(f"malformed sidecar header: {exc}") from exc
    if not isinstance(header, dict) or \
            header.get("format") != "repro.whitepages.columns":
        raise ColumnDataError("not a column sidecar header")
    if header.get("version") != 1:
        raise ColumnDataError(
            f"unsupported sidecar version {header.get('version')!r}")
    if not isinstance(header.get("rows"), int) or \
            not isinstance(header.get("columns"), list):
        raise ColumnDataError("sidecar header missing rows/columns")
    return header, _pad_to(start + header_len)


def write_sidecar_file(path: Any, columns: Dict[str, Tuple[Any, List[int]]],
                       ordered_names: Sequence[str]) -> int:
    """Write the sidecar next to a snapshot; returns the header CRC."""
    data, header_crc = build_sidecar(columns, ordered_names)
    Path(path).write_bytes(data)
    return header_crc


def columns_from_records(records: Sequence[Any]
                         ) -> Dict[str, Tuple[Any, List[int]]]:
    """Column arrays for ``records`` (already in snapshot row order),
    for savers whose database runs without a live column store."""
    store = ColumnStore(records)
    return store.column_arrays([r.machine_name for r in records])
