"""The shard service: out-of-process live shards, one ``WhitePages`` face.

Two halves:

- :class:`ShardServiceClient` (a.k.a. :data:`RemoteShardedDatabase`) —
  a synchronous client that presents the duck-typed ``WhitePages``
  surface over N :class:`~repro.runtime.shard_worker.ShardWorker`
  endpoints.  Point operations route by CRC-32 of the machine name
  (the same :func:`~repro.database.sharding.shard_of` partition the
  in-process sharded database and the per-shard snapshot manifest use);
  queries fan out concurrently over the worker sockets and merge in
  machine-name order, reproducing the single-shard engine's result
  exactly.  Pools, :class:`~repro.core.scheduler.IndexedPoolScheduler`,
  the centralized baseline, and the deployments run against it
  unchanged.
- :class:`ShardSupervisor` — spawns the worker processes, seeds them
  from per-shard v3 snapshot files, health-checks them, and restarts a
  dead worker from its last checkpoint (the PR 4 manifest format, so a
  checkpoint directory is also loadable in-process via
  :func:`~repro.database.sharding.load_sharded_database`).

Semantics and scope
-------------------
The client mirrors the in-process database's semantics with two
documented deltas inherent to crossing a process boundary:

- **Listeners are client-side.**  ``subscribe`` / ``unsubscribe``
  register callbacks in *this client*; they fire for mutations made
  through this client (which returns the authoritative post-mutation
  record from the worker).  Mutations made by other clients of the same
  workers are not observed — same single-writer assumption the indexed
  pool scheduler already makes for its own cache.
- **``exclusive()`` is client-scoped.**  It returns the client's
  operation lock — every *mutation* through this client acquires it —
  giving scheduler attachment and snapshot capture the atomicity they
  need against other threads sharing the client.  Read-only operations
  (each shard-atomic worker-side) deliberately bypass it so concurrent
  queries are not serialised behind one in-flight round trip.
  Cross-*client* atomicity is out of scope, exactly as cross-*process*
  atomicity was for the in-process database.

Failures surface faithfully: worker-side :mod:`repro.errors` exceptions
are re-raised by class name, so ``UnknownMachineError`` from a live
shard behaves like one from a local registry.

Routing epochs (live resharding)
--------------------------------
The client's view of the fleet is a versioned
:class:`~repro.database.sharding.RoutingTable` ``(epoch, shards,
endpoints)``.  Point ops are stamped with the table's epoch; a worker
serving a different epoch — or retired by a live reshard — refuses the
op with :class:`~repro.errors.StaleRoutingError`, whose error frame
carries the worker's current table.  The client then *refreshes and
retries transparently*: it installs the newer table (new connections,
new fan-out pool) and re-routes the op, so a reshard driven by
:meth:`ShardSupervisor.rebalance` (or :meth:`split` / :meth:`merge`)
is invisible to callers beyond a bounded pause at cutover.  The refusal
happens before the worker applies or logs anything, so the retry is
safe even for non-idempotent verbs.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import repro.errors as _errors
from repro.database.records import MachineRecord
from repro.database.sharding import (
    RoutingTable,
    ShardedWhitePagesDatabase,
    _merge_by_name,
    _merge_names,
    _MANIFEST_FORMAT,
    _MANIFEST_VERSION,
    _PARTITION_CRC32,
    _shard_file_name,
    is_shard_manifest,
    save_sharded_database,
)
from repro.database.wal import WAL_MODES
from repro.database.whitepages import Listener, Predicate
from repro.errors import (
    ConfigError,
    DatabaseError,
    RuntimeProtocolError,
    StaleRoutingError,
)
from repro.obs.telemetry import (
    MetricsRegistry,
    merge_counters,
    merge_histograms,
    summarize_histogram,
)
from repro.obs.tracing import new_trace_id
from repro.runtime.protocol import read_frame_sock, write_frame_sock

__all__ = [
    "ShardServiceClient",
    "RemoteShardedDatabase",
    "ShardSupervisor",
    "parse_endpoints",
    "backoff_delay",
]

#: Seconds a worker gets to report readiness before startup fails.
_READY_TIMEOUT_S = 30.0


def backoff_delay(attempt: int, *, base: float = 0.05, cap: float = 2.0,
                  jitter: float = 0.25,
                  rng: Optional[random.Random] = None) -> float:
    """Exponential backoff with jitter for retry loop ``attempt``
    (0-based): ``min(cap, base·2^attempt)`` scaled by a uniform
    ``±jitter`` factor.  The jitter de-synchronises clients hammering a
    worker endpoint that is mid-restart — without it every retry wave
    lands in lockstep on the exact moment the last one failed."""
    delay = min(cap, base * (2.0 ** attempt))
    spread = (rng or random).uniform(-jitter, jitter)
    return max(0.0, delay * (1.0 + spread))


def parse_endpoints(spec: str) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or space-separated) into pairs."""
    endpoints: List[Tuple[str, int]] = []
    for part in spec.replace(",", " ").split():
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(f"bad shard endpoint {part!r}; want host:port")
        endpoints.append((host, int(port)))
    if not endpoints:
        raise ConfigError("no shard endpoints given")
    return endpoints


def _raise_remote(reply: Dict[str, Any]) -> None:
    """Re-raise a worker error frame as its original exception class.

    A ``StaleRoutingError`` frame may carry the worker's current
    routing table; it rides along on the exception so the client can
    refresh without a second round trip.
    """
    name = reply.get("error", "RuntimeProtocolError")
    exc_type = getattr(_errors, str(name), None)
    if not (isinstance(exc_type, type)
            and issubclass(exc_type, _errors.ReproError)):
        exc_type = RuntimeProtocolError
    if exc_type is StaleRoutingError:
        raise StaleRoutingError(
            reply.get("message", "stale routing epoch"),
            routing=reply.get("routing"))
    raise exc_type(reply.get("message", "shard worker error"))


class _WorkerConnection:
    """One persistent blocking socket to one shard worker.

    A lock serialises request/response pairs (the protocol has no
    correlation ids); on a connection error the next round trip redials
    — with bounded exponential backoff and jitter, because the usual
    cause is a worker mid-restart whose endpoint comes back after a
    beat — and a restarted worker re-binds its old endpoint, so
    recovery is transparent to callers.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 dial_attempts: int = 5,
                 metrics: Optional[MetricsRegistry] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.dial_attempts = max(1, int(dial_attempts))
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        #: Shared client registry; each dropped-socket redial bumps its
        #: ``reconnects`` counter for the fleet-health view.
        self._metrics = metrics

    def _dial(self) -> socket.socket:
        for attempt in range(self.dial_attempts):
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
            except OSError:
                if attempt + 1 >= self.dial_attempts:
                    raise
                time.sleep(backoff_delay(attempt))
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        raise OSError("unreachable")  # pragma: no cover - loop always exits

    def close(self) -> None:
        """Close the cached socket, if any; safe to call repeatedly."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - platform dependent
                    pass
                self._sock = None

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def roundtrip(self, frame: Dict[str, Any], *,
                  idempotent: bool = True) -> Dict[str, Any]:
        """Send one request frame and return the worker's reply.

        Redials once on a failed send (always safe: the worker never saw
        a complete frame).  A lost *reply* is retried only when
        ``idempotent`` is true, since the request may already have been
        applied.

        Args:
            frame: Wire frame with at least a ``kind`` key.
            idempotent: Whether the verb may be resent after a lost
                reply without risking double application.

        Returns:
            The decoded reply frame.

        Raises:
            DatabaseError: Re-raised from an ``error`` reply frame.
            OSError: When the worker stays unreachable after a redial.
        """
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    self._sock = self._dial()
                try:
                    write_frame_sock(self._sock, frame)
                except OSError:
                    # Send failed: the worker never dispatched a
                    # complete frame (a truncated one is dropped with
                    # the connection), so a resend after redial is safe
                    # for every verb.  Common after a worker restart
                    # invalidates a cached socket.
                    self._drop()
                    if self._metrics is not None:
                        self._metrics.inc("reconnects")
                    if attempt:
                        raise
                    continue
                try:
                    reply = read_frame_sock(self._sock)
                    break
                except (OSError, RuntimeProtocolError):
                    # The request may have been applied and only the
                    # reply lost — resending a non-idempotent verb here
                    # could double-apply it (e.g. a second `register`
                    # raising DuplicateMachineError for work that
                    # succeeded), so only idempotent requests retry.
                    self._drop()
                    if self._metrics is not None:
                        self._metrics.inc("reconnects")
                    if attempt or not idempotent:
                        raise
        if reply.get("kind") == "error":
            _raise_remote(reply)
        return reply


class _RouteState:
    """One immutable routing generation: table + connections + pool.

    The client swaps the whole object atomically on a refresh, so a
    concurrent op always sees a *coherent* (table, connections) pair —
    never a new shard count indexing into an old connection list.
    """

    __slots__ = ("table", "conns", "executor")

    def __init__(self, table: RoutingTable, conns: List[_WorkerConnection],
                 executor: Optional[ThreadPoolExecutor]):
        self.table = table
        self.conns = conns
        self.executor = executor


class ShardServiceClient:
    """``WhitePages`` surface over live out-of-process shard workers.

    Parameters
    ----------
    endpoints:
        One ``(host, port)`` per shard, **in shard order** — endpoint
        ``i`` must serve shard ``i`` of ``len(endpoints)``, since point
        operations route by :func:`shard_of`.
    fan_out:
        Thread pool size for query fan-out (defaults to the shard
        count; 1 = serial).  Unlike the in-process thread fan-out, the
        per-shard work here runs in *worker processes* on real cores —
        the client threads only overlap socket I/O and JSON decode.
    epoch:
        The routing epoch of ``endpoints`` (0 for a never-resharded
        fleet).  Point ops are stamped with it; a mismatch triggers the
        transparent refresh-and-retry described in the module
        docstring.
    refresh_timeout:
        Upper bound in seconds on one routing refresh — how long an op
        may stall inside a reshard's cutover window before the
        ``StaleRoutingError`` is surfaced instead of retried.
    """

    #: Routing-refresh retries per op.  Each retry means the table
    #: moved *again* mid-op — more than a couple is pathological.
    _MAX_ROUTE_RETRIES = 8

    def __init__(self, endpoints: Sequence[Tuple[str, int]], *,
                 fan_out: Optional[int] = None, timeout: float = 30.0,
                 epoch: int = 0, refresh_timeout: float = 15.0):
        endpoints = list(endpoints)
        if not endpoints:
            raise ConfigError("need at least one shard endpoint")
        self._timeout = timeout
        self._fan_out_size = fan_out
        self._refresh_timeout = float(refresh_timeout)
        #: Client-side telemetry: per-shard RTT histograms, reconnect /
        #: stale-routing / fan-out-straggler counters.
        self._metrics = MetricsRegistry()
        #: Trace identity: one random prefix per client, one sequence
        #: number per logical op (a whole fan-out shares one id, so the
        #: straggler shard's span is findable from the client's trace).
        self._trace_prefix = new_trace_id()
        self._trace_seq = itertools.count(1)
        #: Serialises table installs; ops never hold it.
        self._route_lock = threading.Lock()
        #: Superseded connection generations: an in-flight op on another
        #: thread may still hold a stale conn, so they are closed at
        #: :meth:`close`, not at refresh.
        self._graveyard: List[_RouteState] = []
        self._route = self._build_route(
            RoutingTable(epoch, len(endpoints), endpoints))
        #: One lock for the whole client: every *mutation* acquires it,
        #: so ``exclusive()`` gives multi-op atomicity w.r.t. other
        #: writers sharing this client; reads bypass it (see module
        #: docstring).
        self._oplock = threading.RLock()
        self._subscriptions: Dict[str, Tuple[Listener, ...]] = {}

    def _build_route(self, table: RoutingTable) -> _RouteState:
        conns = [_WorkerConnection(h, p, timeout=self._timeout,
                                   metrics=self._metrics)
                 for h, p in table.endpoints]
        workers = len(conns) if self._fan_out_size is None \
            else max(1, min(int(self._fan_out_size), len(conns)))
        executor = (ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="wp-remote")
            if workers >= 2 and len(conns) >= 2 else None)
        return _RouteState(table, conns, executor)

    # -- topology -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Shard count under the client's current routing table."""
        return self._route.table.shards

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        """Current ``(host, port)`` per shard, in shard order."""
        return [(c.host, c.port) for c in self._route.conns]

    @property
    def _conns(self) -> List[_WorkerConnection]:
        # Compatibility view of the current generation's connections
        # (tests and the supervisor's direct pokes use it).  Multi-step
        # routed paths capture self._route once instead.
        return self._route.conns

    def routing_table(self) -> RoutingTable:
        """The client's current :class:`RoutingTable` (epoch, shards,
        endpoints)."""
        return self._route.table

    def _conn_for(self, machine_name: str) -> _WorkerConnection:
        state = self._route
        return state.conns[state.table.shard_of(machine_name)]

    def close(self) -> None:
        """Close every connection and fan-out pool, including
        generations superseded by routing refreshes."""
        for state in [self._route] + self._graveyard:
            if state.executor is not None:
                state.executor.shutdown(wait=True)
            for conn in state.conns:
                conn.close()
        self._graveyard = []

    def __enter__(self) -> "ShardServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def exclusive(self):
        """The client's operation lock (see module docstring for the
        client-scoped atomicity contract)."""
        return self._oplock

    # -- tracing --------------------------------------------------------------

    @property
    def trace_prefix(self) -> str:
        """This client's trace-id prefix: every frame it stamps carries
        ``<prefix>-<seq>``, so its ops are greppable in any shard's
        slow-op JSONL."""
        return self._trace_prefix

    def _next_trace(self) -> str:
        """Mint the next trace id (one per logical op; a fan-out's
        shards all carry the same id)."""
        return new_trace_id(self._trace_prefix, next(self._trace_seq))

    # -- routing refresh ------------------------------------------------------

    def _install_table(self, table: RoutingTable) -> None:
        """Swap in a newer routing generation (old one → graveyard)."""
        with self._route_lock:
            if table.epoch <= self._route.table.epoch:
                return  # another thread won the race with a newer table
            self._graveyard.append(self._route)
            self._route = self._build_route(table)

    def _poll_routing(self, state: _RouteState) -> Optional[Dict[str, Any]]:
        """Ask the old fleet for the new table (``routing`` verb)."""
        for conn in state.conns:
            try:
                reply = conn.roundtrip({"kind": "routing"})
            except (OSError, _errors.ReproError):
                continue
            if reply.get("routing") is not None:
                return reply["routing"]
        return None

    def _refresh_routing(self,
                         exc: Optional[StaleRoutingError] = None) -> None:
        """Install a newer routing table after a stale-epoch refusal.

        Prefers the table carried on the error frame; during the
        cutover window — fenced sources, table not yet published — it
        polls the old endpoints' ``routing`` verb with backoff until the
        migrator publishes, bounded by ``refresh_timeout``.

        Raises:
            StaleRoutingError: when no newer table appears in time.
        """
        self._metrics.inc("stale_routing_retries")
        payload = getattr(exc, "routing", None) if exc is not None else None
        before = self._route
        deadline = time.monotonic() + self._refresh_timeout
        attempt = 0
        while True:
            if payload is not None:
                table = RoutingTable.from_wire(payload)
                if table.epoch > self._route.table.epoch and table.endpoints:
                    self._install_table(table)
                    return
                payload = None
            if self._route is not before:
                return  # another thread refreshed while we waited
            if time.monotonic() >= deadline:
                raise StaleRoutingError(
                    "routing table refresh timed out after "
                    f"{self._refresh_timeout:.1f}s (still at epoch "
                    f"{self._route.table.epoch}, "
                    f"{self._route.table.shards} shards)")
            time.sleep(backoff_delay(attempt, base=0.02, cap=0.25))
            attempt += 1
            payload = self._poll_routing(before)

    def refresh_routing(self) -> RoutingTable:
        """Force a routing refresh against the current endpoints and
        return the (possibly unchanged) table.

        Returns the newest table any worker advertises; on a quiescent
        fleet this is a no-op round trip.
        """
        payload = self._poll_routing(self._route)
        if payload is not None:
            table = RoutingTable.from_wire(payload)
            if table.epoch > self._route.table.epoch and table.endpoints:
                self._install_table(table)
        return self._route.table

    def _point(self, machine_name: str, frame: Dict[str, Any], *,
               idempotent: bool = True) -> Dict[str, Any]:
        """Route one epoch-stamped point op; refresh-and-retry on a
        stale-epoch refusal (safe for every verb — a refused op was
        never applied or logged)."""
        for _ in range(self._MAX_ROUTE_RETRIES):
            state = self._route
            stamped = dict(frame)
            stamped["epoch"] = state.table.epoch
            stamped["trace"] = self._next_trace()
            shard = state.table.shard_of(machine_name)
            conn = state.conns[shard]
            try:
                t0 = time.perf_counter()
                reply = conn.roundtrip(stamped, idempotent=idempotent)
            except StaleRoutingError as exc:
                self._refresh_routing(exc)
                continue
            self._metrics.observe(f"rtt.shard{shard}",
                                  time.perf_counter() - t0)
            return reply
        raise StaleRoutingError(
            f"routing kept moving: {self._MAX_ROUTE_RETRIES} epoch bumps "
            "during one op")

    def _shard_roundtrip(self, shard_index: int, frame: Dict[str, Any], *,
                         idempotent: bool = True) -> Dict[str, Any]:
        """One round trip to shard ``shard_index`` *of the current
        table*, with the same refresh-and-retry as point ops."""
        for _ in range(self._MAX_ROUTE_RETRIES):
            state = self._route
            stamped = dict(frame)
            stamped.setdefault("trace", self._next_trace())
            try:
                t0 = time.perf_counter()
                reply = state.conns[shard_index].roundtrip(
                    stamped, idempotent=idempotent)
            except StaleRoutingError as exc:
                self._refresh_routing(exc)
                continue
            self._metrics.observe(f"rtt.shard{shard_index}",
                                  time.perf_counter() - t0)
            return reply
        raise StaleRoutingError(
            f"routing kept moving: {self._MAX_ROUTE_RETRIES} epoch bumps "
            "during one op")

    def _fan_out_once(self, state: _RouteState,
                      make_frame: Callable[[int], Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
        """One epoch-stamped round trip per worker of ``state``;
        replies in shard order.  The whole fan-out shares one trace id
        (so the straggler's worker-side span matches the client's op),
        and each shard's RTT feeds its histogram — the slowest shard
        takes the per-fan-out ``straggler.shard<i>`` attribution."""
        trace = self._next_trace()

        def stamped(i: int) -> Dict[str, Any]:
            """Shard ``i``'s frame with the generation's epoch applied."""
            frame = dict(make_frame(i))
            frame["epoch"] = state.table.epoch
            frame["trace"] = trace
            return frame

        def timed(i: int, conn: _WorkerConnection
                  ) -> Tuple[Dict[str, Any], float]:
            """(reply, RTT seconds) for shard ``i``'s round trip."""
            t0 = time.perf_counter()
            reply = conn.roundtrip(stamped(i))
            return reply, time.perf_counter() - t0
        if state.executor is not None:
            futures = [
                state.executor.submit(timed, i, conn)
                for i, conn in enumerate(state.conns)
            ]
            results = [f.result() for f in futures]
        else:
            results = [timed(i, conn)
                       for i, conn in enumerate(state.conns)]
        self._metrics.inc("fanouts")
        slowest, slowest_rtt = 0, -1.0
        for i, (_, rtt) in enumerate(results):
            self._metrics.observe(f"rtt.shard{i}", rtt)
            if rtt > slowest_rtt:
                slowest, slowest_rtt = i, rtt
        if len(results) > 1:
            # Straggler attribution: which shard bounded this fan-out.
            self._metrics.inc(f"straggler.shard{slowest}")
        return [reply for reply, _ in results]

    def _fan_out(self, make_frame: Callable[[int], Dict[str, Any]]
                 ) -> List[Dict[str, Any]]:
        """One round trip per worker; replies in shard order.  A stale
        routing refusal refreshes the table and re-fans the whole
        request over the new fleet."""
        for _ in range(self._MAX_ROUTE_RETRIES):
            state = self._route
            try:
                return self._fan_out_once(state, make_frame)
            except StaleRoutingError as exc:
                self._refresh_routing(exc)
        raise StaleRoutingError(
            f"routing kept moving: {self._MAX_ROUTE_RETRIES} epoch bumps "
            "during one fan-out")

    # -- client-side listeners ------------------------------------------------

    def subscribe(self, machine_names: Iterable[str], fn: Listener) -> None:
        """Register a client-side listener for mutations *through this
        client* to the named machines (see the module docstring's
        single-writer caveat).  Survives routing refreshes — the
        subscription map is client state, not worker state."""
        with self._oplock:
            for name in machine_names:
                self._subscriptions[name] = \
                    self._subscriptions.get(name, ()) + (fn,)

    def unsubscribe(self, machine_names: Iterable[str],
                    fn: Listener) -> None:
        """Drop ``fn``'s subscription on the named machines (a no-op
        for names it never subscribed to)."""
        with self._oplock:
            for name in machine_names:
                subs = self._subscriptions.get(name)
                if subs is None:
                    continue
                remaining = tuple(l for l in subs if l != fn)
                if remaining:
                    self._subscriptions[name] = remaining
                else:
                    del self._subscriptions[name]

    def remove_listener(self, fn: Listener) -> None:
        """Drop ``fn`` from every machine it is subscribed to."""
        with self._oplock:
            for name in [n for n, subs in self._subscriptions.items()
                         if any(l == fn for l in subs)]:
                remaining = tuple(l for l in self._subscriptions[name]
                                  if l != fn)
                if remaining:
                    self._subscriptions[name] = remaining
                else:
                    del self._subscriptions[name]

    def listener_stats(self) -> Dict[str, int]:
        """Client-side subscription counters (machines and entries)."""
        with self._oplock:
            return {
                "subscribed_machines": len(self._subscriptions),
                "subscription_entries": sum(
                    len(subs) for subs in self._subscriptions.values()),
            }

    def _notify(self, machine_name: str,
                record: Optional[MachineRecord]) -> None:
        for fn in self._subscriptions.get(machine_name, ()):
            fn(machine_name, record)

    # -- registry CRUD --------------------------------------------------------

    def add(self, record: MachineRecord) -> None:
        """Register a machine (point op, WAL-durable worker-side).

        Args: record — routed by CRC-32 of its name under the current
            table, epoch-stamped.
        Raises: ``DuplicateMachineError``.
        """
        with self._oplock:
            # Not idempotent: a retried register that actually applied
            # would raise DuplicateMachineError for successful work.
            self._point(record.machine_name,
                        {"kind": "register", "row": record.to_row()},
                        idempotent=False)
            self._notify(record.machine_name, record)

    def remove(self, machine_name: str) -> MachineRecord:
        """Remove a machine by name (point op, WAL-durable).

        Returns: the removed record.
        Raises: ``UnknownMachineError``.
        """
        with self._oplock:
            reply = self._point(machine_name,
                                {"kind": "remove", "name": machine_name},
                                idempotent=False)
            record = MachineRecord.from_row(reply["row"])
            self._notify(machine_name, None)
            return record

    def get(self, machine_name: str) -> MachineRecord:
        """Fetch one record by name (point read, epoch-stamped).

        Raises: ``UnknownMachineError``.
        """
        reply = self._point(machine_name,
                            {"kind": "get", "name": machine_name})
        return MachineRecord.from_row(reply["row"])

    def update(self, record: MachineRecord) -> None:
        """Replace a record wholesale (point op, WAL-durable).

        Raises: ``UnknownMachineError``.
        """
        with self._oplock:
            self._point(record.machine_name,
                        {"kind": "update", "row": record.to_row()})
            self._notify(record.machine_name, record)

    def update_dynamic(self, machine_name: str, **dynamic) -> MachineRecord:
        """Update a record's dynamic fields (point op, WAL-durable).

        Returns: the authoritative post-update record from the worker.
        Raises: ``UnknownMachineError``.
        """
        from repro.runtime.shard_worker import encode_dynamic
        with self._oplock:
            reply = self._point(machine_name, {
                "kind": "update_dynamic", "name": machine_name,
                "dynamic": encode_dynamic(dynamic)})
            record = MachineRecord.from_row(reply["row"])
            self._notify(machine_name, record)
            return record

    def __len__(self) -> int:
        return sum(r["count"]
                   for r in self._fan_out(lambda i: {"kind": "len"}))

    def __contains__(self, machine_name: str) -> bool:
        return bool(self._point(
            machine_name,
            {"kind": "contains", "name": machine_name})["contains"])

    def names(self) -> List[str]:
        """Every machine name in the fleet, in global name order
        (per-shard sorted runs merged client-side)."""
        return _merge_names(
            [r["names"] for r in self._fan_out(lambda i: {"kind": "names"})])

    # -- matching -------------------------------------------------------------

    def _match_frames(self, plan: Any, include_taken: bool,
                      names_only: bool) -> Optional[Dict[str, Any]]:
        """The shared ``match`` request, or None for an unsatisfiable
        plan (short-circuits without touching the wire)."""
        from repro.core.plan import QueryPlan, compile_plan
        from repro.runtime.shard_worker import clauses_to_wire
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return None
        return {"kind": "match", "clauses": clauses_to_wire(plan),
                "include_taken": include_taken, "names_only": names_only}

    def match(self, plan: Any = None, *, include_taken: bool = False
              ) -> List[MachineRecord]:
        """Fan the compiled clauses out to every worker; merge rows in
        name order (record- and order-identical to the in-process
        engines — the shard-service property tests gate this)."""
        frame = self._match_frames(plan, include_taken, names_only=False)
        if frame is None:
            return []
        replies = self._fan_out(lambda i: frame)
        parts = [[MachineRecord.from_row(row) for row in r["rows"]]
                 for r in replies]
        return _merge_by_name(parts)

    def match_names(self, plan: Any = None, *,
                    include_taken: bool = False) -> List[str]:
        """Names only — the cheap-wire form for bulk candidate
        enumeration (mirrors :meth:`ParallelMatcher.match_names`)."""
        frame = self._match_frames(plan, include_taken, names_only=True)
        if frame is None:
            return []
        return _merge_names(
            [r["names"] for r in self._fan_out(lambda i: frame)])

    def count(self, plan: Any = None, *, include_taken: bool = False) -> int:
        """Count matches fleet-wide (fan-out; per-shard counts summed)."""
        from repro.core.plan import QueryPlan, compile_plan
        from repro.runtime.shard_worker import clauses_to_wire
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return 0
        frame = {"kind": "count", "clauses": clauses_to_wire(plan),
                 "include_taken": include_taken}
        return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def scan(self, predicate: Optional[Predicate] = None,
             include_taken: bool = False) -> List[MachineRecord]:
        """Deprecated O(n) walk: workers ship their records (name
        order), the opaque predicate runs client-side."""
        frame = {"kind": "scan", "include_taken": include_taken}
        replies = self._fan_out(lambda i: frame)
        parts = [[MachineRecord.from_row(row) for row in r["rows"]]
                 for r in replies]
        records = _merge_by_name(parts)
        if predicate is None:
            return records
        return [rec for rec in records if predicate(rec)]

    def count_up(self) -> int:
        """Count of machines in the ``up`` state fleet-wide (fan-out)."""
        return sum(r["count"]
                   for r in self._fan_out(lambda i: {"kind": "count_up"}))

    # -- take / release -------------------------------------------------------

    def take(self, machine_name: str, pool_name: str) -> bool:
        """Mark one machine taken by a pool (point op, WAL-durable).

        Returns: ``True`` when this call took it; ``False`` when it was
        already held (no exception — a losing race is a normal outcome).
        Raises: ``UnknownMachineError``.
        """
        with self._oplock:
            return bool(self._point(machine_name, {
                "kind": "take", "name": machine_name,
                "pool": pool_name})["taken"])

    def take_all(self, machine_names: Iterable[str],
                 pool_name: str) -> List[str]:
        """Bulk take: one ``take_all`` round trip per involved shard,
        result in the caller's name order (matching the in-process
        loop's semantics without a per-machine round trip).

        Routing-epoch safe: on a stale refusal mid-batch, only the
        not-yet-attempted names re-route under the refreshed table —
        names a previous group already took are never re-sent (their
        takes are WAL-replayed onto the new fleet by the migrator).
        """
        names = list(machine_names)
        if not names:
            return []
        taken: Set[str] = set()
        trace = self._next_trace()  # one logical op, however many groups
        with self._oplock:
            remaining = names
            for _ in range(self._MAX_ROUTE_RETRIES):
                if not remaining:
                    break
                state = self._route
                groups: Dict[int, List[str]] = {}
                for name in remaining:
                    groups.setdefault(state.table.shard_of(name),
                                      []).append(name)
                done: Set[str] = set()
                try:
                    for i, group in groups.items():
                        reply = state.conns[i].roundtrip({
                            "kind": "take_all", "names": group,
                            "pool": pool_name,
                            "epoch": state.table.epoch,
                            "trace": trace})
                        taken.update(reply["names"])
                        done.update(group)
                except StaleRoutingError as exc:
                    remaining = [n for n in remaining if n not in done]
                    self._refresh_routing(exc)
                    continue
                remaining = []
            else:
                raise StaleRoutingError(
                    f"routing kept moving: {self._MAX_ROUTE_RETRIES} "
                    "epoch bumps during one take_all")
        return [name for name in names if name in taken]

    def release(self, machine_name: str, pool_name: str) -> None:
        """Release one machine from a pool (point op, WAL-durable).

        Raises: ``UnknownMachineError``; ``MachineTakenError`` when a
            different pool holds it.
        """
        with self._oplock:
            self._point(machine_name, {
                "kind": "release", "name": machine_name, "pool": pool_name})

    def release_pool(self, pool_name: str) -> int:
        """Release every machine a pool holds (fan-out mutation;
        per-shard release counts summed)."""
        frame = {"kind": "release_pool", "pool": pool_name}
        with self._oplock:
            return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def holder_of(self, machine_name: str) -> Optional[str]:
        """The pool holding a machine, or ``None`` (point read).

        Raises: ``UnknownMachineError``.
        """
        return self._point(
            machine_name,
            {"kind": "holder_of", "name": machine_name})["holder"]

    def taken_count(self) -> int:
        """How many machines are taken fleet-wide (fan-out)."""
        frame = {"kind": "taken_count"}
        return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def free_names(self) -> Set[str]:
        """The set of free (not-taken) machine names (fan-out; the
        per-shard sets union — unordered by contract)."""
        frame = {"kind": "free_names"}
        replies = self._fan_out(lambda i: frame)
        free: Set[str] = set()
        for r in replies:
            free.update(r["names"])
        return free

    # -- observability / persistence ------------------------------------------

    def health(self) -> List[Dict[str, Any]]:
        """Per-worker health frames, in shard order."""
        return self._fan_out(lambda i: {"kind": "health"})

    def index_stats(self) -> Dict[str, Any]:
        """Fleet-wide index/record counters aggregated from ``health``."""
        per_shard = [h["index_stats"] for h in self.health()]
        return {
            "shards": len(self._conns),
            "machines": sum(s["machines"] for s in per_shard),
            "free": sum(s["free"] for s in per_shard),
            "taken": sum(s["taken"] for s in per_shard),
            "per_shard": per_shard,
        }

    def inject_fault(self, shard_index: int,
                     triggers: Optional[Dict[str, int]] = None, *,
                     delays: Optional[Dict[str, float]] = None
                     ) -> Dict[str, Any]:
        """Arm fault injection in one worker — the client face of the
        harness, for durability tests, adversarial scenarios, and
        game-day drills.

        ``triggers`` are crash-point countdowns (SIGKILL on expiry;
        empty dict disarms); ``delays`` map shard verbs (or ``"*"``) to
        seconds of added latency — the slow-worker brownout knob (empty
        dict disarms).  Passing only one map leaves the other family's
        armed state untouched.
        """
        frame: Dict[str, Any] = {"kind": "fault"}
        if triggers is not None:
            frame["triggers"] = dict(triggers)
        if delays is not None:
            frame["delays"] = dict(delays)
        return self._shard_roundtrip(shard_index, frame)

    def set_telemetry(self, enabled: bool) -> List[Dict[str, Any]]:
        """Flip worker-side telemetry recording fleet-wide at runtime.

        Existing series are kept either way — re-enabling resumes the
        same histograms.  The telemetry overhead scale gate A/B-times
        one live fleet with this toggle (two separate fleets never
        share process placement, so their baseline spread can exceed
        the per-op tax under test); operators get the same lever for
        ruling telemetry in or out during an incident.
        """
        return self._fan_out(
            lambda i: {"kind": "set_telemetry", "enabled": bool(enabled)})

    def wal_stats(self) -> Dict[str, Any]:
        """Fleet-wide write-ahead-log counters (from ``health``):
        per-shard mode/LSN/sync stats plus the aggregate append, sync,
        and byte totals — the observability face of the durability
        knob."""
        per_shard = [h.get("wal", {"mode": "off"}) for h in self.health()]
        return {
            "shards": len(self._conns),
            "modes": sorted({str(s.get("mode", "off")) for s in per_shard}),
            "appended": sum(int(s.get("appended", 0)) for s in per_shard),
            "syncs": sum(int(s.get("syncs", 0)) for s in per_shard),
            "bytes": sum(int(s.get("bytes", 0)) for s in per_shard),
            "per_shard": per_shard,
        }

    def metrics(self, *, max_spans: int = 32) -> Dict[str, Any]:
        """Fleet telemetry: per-shard ``metrics`` replies plus exact
        fleet aggregation and the client's own wire-level view.

        Because every shard's histograms share the fixed bucket edges
        of :mod:`repro.obs.telemetry`, the fleet percentiles here are
        computed from an *exact* bucket-wise merge — identical to one
        histogram over the pooled samples, not an approximation.

        Args:
            max_spans: Recent spans each worker returns (0 for none).

        Returns:
            ``{"shards", "epoch", "per_shard", "fleet", "client"}`` —
            ``per_shard`` is the raw worker replies in shard order;
            ``fleet`` has merged histogram summaries (p50/p99/max per
            series), summed counters, total ``requests``/``slow_ops``,
            and per-shard WAL lag (``last_lsn - synced_lsn``);
            ``client`` has this client's RTT summaries per shard, its
            reconnect/stale-routing/straggler counters, and its
            ``trace_prefix``.
        """
        per_shard = self._fan_out(
            lambda i: {"kind": "metrics", "max_spans": int(max_spans)})
        hist_maps = [r.get("metrics", {}).get("histograms", {})
                     for r in per_shard]
        names: Set[str] = set()
        for hists in hist_maps:
            names.update(hists)
        fleet_hists = {
            name: summarize_histogram(
                merge_histograms(hists.get(name) for hists in hist_maps))
            for name in sorted(names)
        }
        wal_lag = [max(0, int(r.get("wal", {}).get("last_lsn", 0))
                       - int(r.get("wal", {}).get("synced_lsn", 0)))
                   for r in per_shard]
        client_snap = self._metrics.snapshot()
        return {
            "shards": len(per_shard),
            "epoch": self._route.table.epoch,
            "per_shard": per_shard,
            "fleet": {
                "histograms": fleet_hists,
                "counters": merge_counters(
                    [r.get("metrics", {}).get("counters", {})
                     for r in per_shard]),
                "requests": sum(int(r.get("requests", 0))
                                for r in per_shard),
                "slow_ops": sum(int(r.get("slow_ops", 0))
                                for r in per_shard),
                "wal_lag": wal_lag,
            },
            "client": {
                "trace_prefix": self._trace_prefix,
                "histograms": {
                    name: summarize_histogram(data)
                    for name, data in sorted(
                        client_snap["histograms"].items())},
                "counters": client_snap["counters"],
            },
        }

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The client's own registry (RTTs, reconnects, stragglers)."""
        return self._metrics

    def snapshot_shard(self, shard_index: int, path: Union[str, Path],
                       version: int = 3) -> Dict[str, Any]:
        """Ask one worker to write its own snapshot file (``version=4``
        adds the worker-side binary column sidecar).

        ``shard_index`` names a shard of the *current* routing table;
        with a WAL attached the worker truncates its log after the
        checkpoint durably lands (unless a live migration pins it).
        """
        with self._oplock:
            return self._shard_roundtrip(
                shard_index,
                {"kind": "snapshot", "path": str(path), "version": version})

    def reset(self, records: Iterable[MachineRecord] = ()) -> None:
        """Replace every worker's shard with freshly seeded state
        (test and re-seed tooling; rows are pre-routed per shard under
        the current table and re-grouped if it moves mid-call)."""
        records = list(records)
        with self._oplock:
            for _ in range(self._MAX_ROUTE_RETRIES):
                state = self._route
                groups: List[List[List[Any]]] = [[] for _ in state.conns]
                for record in records:
                    groups[state.table.shard_of(
                        record.machine_name)].append(record.to_row())
                try:
                    self._fan_out_once(
                        state, lambda i: {"kind": "reset", "rows": groups[i]})
                    break
                except StaleRoutingError as exc:
                    self._refresh_routing(exc)
            else:
                raise StaleRoutingError(
                    f"routing kept moving: {self._MAX_ROUTE_RETRIES} "
                    "epoch bumps during one reset")
            self._subscriptions.clear()

    def shutdown_workers(self) -> None:
        """Best-effort ``shutdown`` verb to every worker of the current
        table (retired workers of older epochs are the supervisor's to
        reap, not the client's)."""
        for conn in self._conns:
            try:
                conn.roundtrip({"kind": "shutdown"})
            except (OSError, _errors.ReproError):
                pass

    # -- migration plumbing (used by ShardMigrator) ---------------------------

    def migrate_begin(self, shard_index: int,
                      path: Union[str, Path]) -> Dict[str, Any]:
        """Ask one worker to write its migration snapshot (no WAL
        truncation; the log is pinned until cutover).

        Returns: the worker's ``snapshot`` reply, including the
        ``watermark`` LSN that anchors the tail stream.
        Raises: ``DatabaseError`` when the worker runs without a WAL.
        """
        return self._route.conns[shard_index].roundtrip(
            {"kind": "migrate_begin", "path": str(path)})

    def migrate_tail(self, shard_index: int, *, after_lsn: int = 0,
                     max_records: int = 512) -> Dict[str, Any]:
        """Stream one bounded slice of a worker's op-log tail
        (entries with LSN > ``after_lsn``; served even when retired).

        Returns: the ``tail`` reply — ``entries``, the worker's
        authoritative ``wal_lsn``, and the scan-stop ``reason``.
        """
        return self._route.conns[shard_index].roundtrip(
            {"kind": "migrate_tail", "after_lsn": int(after_lsn),
             "max_records": int(max_records)})

    def migrate_cutover(self, shard_index: int, *,
                        epoch: Optional[int] = None,
                        retire: Optional[bool] = None,
                        routing: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
        """Flip one worker's migration role: fence/unfence a source
        (``retire``), adopt an ``epoch``, and/or publish a ``routing``
        table (see the worker verb's docstring for the ordering
        contract).  Returns the worker's acknowledgement."""
        frame: Dict[str, Any] = {"kind": "migrate_cutover"}
        if epoch is not None:
            frame["epoch"] = int(epoch)
        if retire is not None:
            frame["retire"] = bool(retire)
        if routing is not None:
            frame["routing"] = dict(routing)
        return self._route.conns[shard_index].roundtrip(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardServiceClient(shards={len(self._conns)}, "
                f"endpoints={self.endpoints})")


#: The advertised alias: read it as "a sharded white-pages database
#: whose shards happen to live in other processes".
RemoteShardedDatabase = ShardServiceClient




# ---------------------------------------------------------------------------
# Supervisor: spawn / health-check / restart with snapshot recovery
# ---------------------------------------------------------------------------


class ShardSupervisor:
    """Own N shard-worker processes; seed, checkpoint, and restart them.

    Parameters
    ----------
    shards:
        Worker count (one live shard each).
    snapshot_dir:
        Directory for seed and checkpoint files.  The supervisor writes
        PR 4's per-shard v3 manifest layout here, so a checkpoint is
        also loadable in-process via :func:`load_sharded_database`.
    records:
        Initial fleet.  Seeded via per-shard snapshot files — workers
        cold-start from disk in parallel instead of replaying one
        ``register`` round trip per record.
    start_method:
        ``multiprocessing`` start method (default: ``forkserver``-free
        choice — ``fork`` where available for fast spawn, else
        ``spawn``; the worker entry point is spawn-safe either way).
    columnar:
        Column-kernel tri-state handed to every worker (``None`` =
        follow the snapshot version; ``True`` = vectorized matching in
        each worker process even from v3 seeds).
    wal, wal_interval:
        The durability knob (see :mod:`repro.database.wal`).
        ``wal="off"`` (the default) keeps the PR 5 contract below;
        ``"async"``/``"fsync"`` give every worker a per-shard op log
        (``shard_<i>.wal`` in ``snapshot_dir``, which becomes
        mandatory), with ``wal_interval`` as the group-commit window in
        seconds (0 = batch only what shares an event-loop tick).

    Recovery contract: :meth:`restart` re-spawns a dead worker **on its
    original endpoint** from the newest snapshot for its shard (last
    :meth:`checkpoint`, else the initial seed, else empty).  With
    ``wal="off"``, mutations after that snapshot are lost — the white
    pages is a cache of monitoring state, and the paper's monitors
    re-populate it.  With a write-ahead log, the worker replays its op
    log tail over the snapshot and recovery is **crash-exact**: every
    acknowledged mutation survives (``fsync`` — process and power
    crash; ``async`` — process crash), restart converts from a
    data-loss event into a bounded-latency one.

    Live resharding: :meth:`rebalance` (and the :meth:`split` /
    :meth:`merge` wrappers) changes the shard count **under traffic**
    via :class:`~repro.database.resharding.ShardMigrator` — snapshot at
    a WAL watermark, warm the new fleet, replay the log tail, flip the
    routing epoch.  Afterwards :attr:`shards`, :attr:`epoch`, and the
    endpoints describe the new fleet; retired source processes linger
    as tombstones (redirecting stale clients) until :meth:`stop` or the
    next reshard reaps them.  Checkpoint manifests record the epoch, so
    a *resumed* supervisor adopts the post-reshard topology from disk
    even when constructed with the old shard count.
    """

    def __init__(self, shards: int, *, host: str = "127.0.0.1",
                 snapshot_dir: Optional[Union[str, Path]] = None,
                 records: Iterable[MachineRecord] = (),
                 start_method: Optional[str] = None,
                 columnar: Optional[bool] = None,
                 wal: str = "off", wal_interval: float = 0.0,
                 telemetry: bool = True,
                 slow_op_threshold: float = 0.25):
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if wal not in WAL_MODES:
            raise ConfigError(
                f"wal must be one of {'|'.join(WAL_MODES)}, got {wal!r}")
        if wal_interval < 0:
            raise ConfigError("wal_interval must be >= 0")
        if wal != "off" and snapshot_dir is None:
            raise ConfigError(
                f"wal={wal!r} needs a snapshot_dir to hold the per-shard "
                "op logs")
        self.shards = shards
        self.host = host
        #: Persistence tri-state handed to every worker: ``None`` =
        #: follow the snapshot version, ``True``/``False`` = force the
        #: columnar kernel on or off.
        self.columnar = columnar
        self.wal = wal
        self.wal_interval = float(wal_interval)
        #: Worker observability: ``telemetry=False`` spawns workers
        #: with the registry disabled (the overhead gate's off arm);
        #: ops at or above ``slow_op_threshold`` seconds land in each
        #: shard's slow-op JSONL beside its WAL (see :mod:`repro.obs`).
        self.telemetry = bool(telemetry)
        self.slow_op_threshold = float(slow_op_threshold)
        if start_method is None:
            start_method = ("fork" if "fork"
                            in multiprocessing.get_all_start_methods()
                            else "spawn")
        self._ctx = multiprocessing.get_context(start_method)
        self._dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self._seed_records = list(records)
        self._processes: List[Optional[Any]] = [None] * shards
        self._ports: List[int] = [0] * shards
        #: Newest on-disk snapshot per shard (seed, then checkpoints).
        self._snapshots: List[Optional[Path]] = [None] * shards
        self._client: Optional[ShardServiceClient] = None
        self.restarts = 0
        #: Routing epoch of the current fleet (0 until the first
        #: reshard; adopted from the checkpoint manifest on resume).
        self.epoch = 0
        #: Retired source processes from past reshards — kept alive as
        #: tombstones that redirect stale clients, reaped at stop() or
        #: by the next rebalance.
        self._retired: List[Any] = []
        #: Guards checkpoint-vs-migration interleaving supervisor-side
        #: (the workers also pin their logs during migration).
        self._migrating = False

    # -- seeding --------------------------------------------------------------

    def _manifest_path(self, stem: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{stem}.json"

    def _write_seed(self) -> None:
        if not self._seed_records or self._dir is None:
            return
        self._dir.mkdir(parents=True, exist_ok=True)
        manifest = self._manifest_path("seed")
        db = ShardedWhitePagesDatabase(self._seed_records,
                                       shards=self.shards)
        written = save_sharded_database(db, manifest)
        if self.shards == 1:
            self._snapshots[0] = written[0]
        else:
            for i, path in enumerate(written[1:]):
                self._snapshots[i] = path

    def _resize(self, shards: int) -> None:
        """Re-shape the per-shard bookkeeping for a new shard count
        (no processes may be running)."""
        self.shards = shards
        self._processes = [None] * shards
        self._ports = [0] * shards
        self._snapshots = [None] * shards

    def _adopt_snapshots(self) -> Optional[str]:
        """Point ``_snapshots`` at existing on-disk state, newest first.

        The restart-the-world path: a supervisor started over a
        ``snapshot_dir`` that already holds a checkpoint (or seed)
        adopts those files, so the workers cold-start from them — and,
        with a write-ahead log, replay their op-log tails on top.

        Migration-aware: a manifest that records an ``epoch`` (written
        by any checkpoint after a live reshard, or any new checkpoint)
        is authoritative about the fleet *topology* — the supervisor
        adopts its shard count and epoch even when constructed with a
        different ``shards``, because the on-disk truth is what the op
        logs (``shard_<i>.e<epoch>.wal``) belong to.  Legacy manifests
        without the field keep the old contract: a different shard
        count is somebody else's layout, skip it.  Returns the adopted
        stem, or None.
        """
        if self._dir is None:
            return None
        for stem in ("checkpoint", "seed"):
            manifest = self._manifest_path(stem)
            if not manifest.exists():
                continue
            if not is_shard_manifest(manifest):
                # A plain snapshot written in place of the manifest:
                # the single-shard, epoch-0 artifact.
                if self.shards != 1:
                    continue
                self._snapshots[0] = manifest
                return stem
            try:
                meta = json.loads(manifest.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(meta, dict) or \
                    meta.get("format") != _MANIFEST_FORMAT:
                continue
            shards_meta = meta.get("shards")
            epoch_meta = meta.get("epoch")
            if not isinstance(shards_meta, int) or shards_meta < 1:
                continue
            if shards_meta != self.shards and epoch_meta is None:
                continue
            files = [self._dir / str(name)
                     for name in meta.get("files", [])]
            if len(files) != shards_meta or \
                    not all(f.exists() for f in files):
                continue
            if shards_meta != self.shards:
                self._resize(shards_meta)
            self.epoch = int(epoch_meta or 0)
            for i, path in enumerate(files):
                self._snapshots[i] = path
            return stem
        return None

    def _wal_path(self, shard_index: int,
                  epoch: Optional[int] = None) -> Optional[str]:
        """This shard's op-log path; epoch-qualified after a reshard so
        a target fleet's logs never collide with the fleet it replaces
        (epoch 0 keeps the bare name for seed compatibility)."""
        if self.wal == "off" or self._dir is None:
            return None
        epoch = self.epoch if epoch is None else epoch
        suffix = "" if epoch == 0 else f".e{epoch}"
        return str(self._dir / f"shard_{shard_index}{suffix}.wal")

    def _slow_op_path(self, shard_index: int,
                      epoch: Optional[int] = None) -> Optional[str]:
        """This shard's slow-op JSONL path, beside its WAL (same
        epoch-qualified naming); ``None`` without a snapshot dir or
        with telemetry off."""
        if self._dir is None or not self.telemetry:
            return None
        epoch = self.epoch if epoch is None else epoch
        suffix = "" if epoch == 0 else f".e{epoch}"
        return str(self._dir / f"shard_{shard_index}{suffix}.slow.jsonl")

    def slow_ops(self, shard_index: int) -> List[Dict[str, Any]]:
        """Parse one shard's on-disk slow-op JSONL (empty when the
        shard never logged a slow op or telemetry is off)."""
        from repro.obs.tracing import read_slow_ops
        path = self._slow_op_path(shard_index)
        return read_slow_ops(path) if path else []

    # -- lifecycle ------------------------------------------------------------

    def _spawn_worker(self, shard_index: int, port: int, *, shards: int,
                      epoch: int, snapshot_path: Optional[str],
                      wal_path: Optional[str],
                      slow_op_path: Optional[str] = None
                      ) -> Tuple[Any, int]:
        """Start one worker process with an explicit geometry (used both
        for the supervisor's own fleet and for a migration's target
        fleet); returns ``(process, bound_port)`` without touching the
        supervisor's bookkeeping.  Without an explicit ``slow_op_path``
        the worker derives one beside its WAL (migration targets get
        theirs that way)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker_main,
            args=(shard_index, shards, self.host, port,
                  snapshot_path, child_conn,
                  self.columnar, self.wal, wal_path,
                  self.wal_interval, epoch,
                  self.telemetry, self.slow_op_threshold, slow_op_path),
            daemon=True,
            name=(f"shard-worker-{shard_index}" if epoch == 0
                  else f"shard-worker-{shard_index}.e{epoch}"),
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT_S):
            process.terminate()
            raise DatabaseError(
                f"shard worker {shard_index} did not report ready within "
                f"{_READY_TIMEOUT_S}s")
        try:
            ready = parent_conn.recv()
        except EOFError as exc:
            # Worker died before reporting (e.g. a transient bind
            # failure racing a just-killed listener during restart).
            process.join(timeout=5.0)
            raise DatabaseError(
                f"shard worker {shard_index} died during startup") from exc
        finally:
            parent_conn.close()
        return process, ready["port"]

    def _spawn(self, shard_index: int, port: int) -> int:
        """Start worker ``shard_index``; returns the bound port."""
        snapshot = self._snapshots[shard_index]
        process, bound = self._spawn_worker(
            shard_index, port, shards=self.shards, epoch=self.epoch,
            snapshot_path=str(snapshot) if snapshot else None,
            wal_path=self._wal_path(shard_index),
            slow_op_path=self._slow_op_path(shard_index))
        self._processes[shard_index] = process
        self._ports[shard_index] = bound
        return bound

    def start(self) -> "ShardSupervisor":
        """Seed (or adopt on-disk state) and spawn the worker fleet;
        returns ``self`` for chaining.

        Explicit ``records`` re-seed the directory (stale op logs are
        deleted — they describe the previous fleet); without records,
        existing checkpoints/seeds are adopted, including a
        post-reshard topology recorded in the manifest.
        Raises ``DatabaseError`` if already started, ``ConfigError``
        when seeding without a ``snapshot_dir``.
        """
        if any(p is not None for p in self._processes):
            raise DatabaseError("supervisor already started")
        if self._seed_records and self._dir is None:
            raise ConfigError(
                "seeding from records needs a snapshot_dir to stage the "
                "per-shard files in")
        if self._seed_records:
            # Explicit records are an explicit re-seed: they win over
            # whatever the snapshot directory already holds — including
            # any stale op logs, which describe the *previous* fleet
            # and must not replay over the new seed.
            self._write_seed()
            for i in range(self.shards):
                wal_path = self._wal_path(i)
                if wal_path:
                    try:
                        Path(wal_path).unlink()
                    except FileNotFoundError:
                        pass
        else:
            self._adopt_snapshots()
        if self.wal != "off":
            assert self._dir is not None  # enforced in __init__
            self._dir.mkdir(parents=True, exist_ok=True)
        for i in range(self.shards):
            self._spawn(i, 0)
        return self

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        """The ``(host, port)`` pairs of the current fleet, shard order."""
        return [(self.host, port) for port in self._ports]

    def client(self, **kwargs: Any) -> ShardServiceClient:
        """A connected client over this supervisor's endpoints (one
        shared instance; pass kwargs through for a private one).

        The client is created at the supervisor's current routing
        epoch, so it survives live reshards: workers retired by a
        migration answer with the new routing table and the client
        re-routes transparently.
        """
        if kwargs:
            kwargs.setdefault("epoch", self.epoch)
            return ShardServiceClient(self.endpoints, **kwargs)
        if self._client is None:
            self._client = ShardServiceClient(self.endpoints,
                                              epoch=self.epoch)
        return self._client

    def reap_retired(self) -> int:
        """Terminate and join every worker retired by a past reshard
        (they linger only to redirect stale clients); returns the
        number reaped."""
        reaped = 0
        for process in self._retired:
            if process is None:
                continue
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            reaped += 1
        self._retired.clear()
        return reaped

    def stop(self) -> None:
        """Shut the fleet down: polite ``shutdown`` to every worker,
        then join (terminate on timeout); retired workers from past
        reshards are reaped too.  Idempotent."""
        self.reap_retired()
        if self._client is not None:
            self._client.shutdown_workers()
            self._client.close()
            self._client = None
        else:
            try:
                with ShardServiceClient(self.endpoints, timeout=5.0) as c:
                    c.shutdown_workers()
            except OSError:  # pragma: no cover - best effort
                pass
        for i, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._processes[i] = None

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- health / recovery ----------------------------------------------------

    def alive(self) -> List[bool]:
        """Per-shard liveness of the worker processes (no network I/O)."""
        return [p is not None and p.is_alive() for p in self._processes]

    def health(self) -> List[Dict[str, Any]]:
        """Per-shard ``health`` replies from the live fleet."""
        return self.client().health()

    def checkpoint(self, stem: str = "checkpoint") -> Path:
        """Ask every worker to write its shard's v3 snapshot; compose
        the manifest.  Returns the manifest path (a valid
        :func:`load_sharded_database` input).

        The snapshot text never crosses the wire — each worker writes
        its own file (atomic rename) and reports the CRC the manifest
        needs.  The per-shard captures run under the client's exclusive
        hold, mirroring :func:`save_sharded_database`'s guarantee that
        a concurrent multi-shard mutation (through this client) cannot
        straddle two shard files.

        After a live reshard the manifest also records the routing
        ``epoch``, so a cold restart adopts the post-reshard topology.
        Raises ``DatabaseError`` while a migration is in flight (a
        checkpoint taken mid-cutover could name a fleet that no longer
        exists by the time it is read back).
        """
        if self._migrating:
            raise DatabaseError("checkpoint refused: reshard in progress")
        if self._dir is None:
            raise ConfigError("checkpoint needs a snapshot_dir")
        self._dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self._manifest_path(stem)
        client = self.client()
        if self.shards == 1 and self.epoch == 0:
            reply = client.snapshot_shard(0, manifest_path)
            self._snapshots[0] = Path(reply["path"])
            return manifest_path
        files = [_shard_file_name(manifest_path, i)
                 for i in range(self.shards)]
        checksums: List[int] = []
        machines = 0
        with client.exclusive():
            for i, name in enumerate(files):
                reply = client.snapshot_shard(i, self._dir / name)
                checksums.append(int(reply["crc"]))
                machines += int(reply["machines"])
                self._snapshots[i] = self._dir / name
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "partition": _PARTITION_CRC32,
            "shards": self.shards,
            "epoch": self.epoch,
            "snapshot_version": 3,
            "machines": machines,
            "files": files,
            "checksums": checksums,
        }
        from repro.database.persistence import atomic_write_text
        atomic_write_text(manifest_path,
                          json.dumps(manifest, indent=2) + "\n")
        return manifest_path

    def restart(self, shard_index: int) -> int:
        """Re-spawn one worker on its original endpoint from the newest
        snapshot for its shard.  Returns the (unchanged) port."""
        process = self._processes[shard_index]
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            self._processes[shard_index] = None
        port = self._ports[shard_index]
        # The dead listener may linger in TIME_WAIT for a beat; retry
        # the rebind with backoff + jitter (so N shards recovering at
        # once don't re-collide on every wave) rather than failing.
        deadline = time.monotonic() + _READY_TIMEOUT_S
        attempt = 0
        while True:
            try:
                self._spawn(shard_index, port)
                break
            except DatabaseError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(backoff_delay(attempt, base=0.1))
                attempt += 1
        self.restarts += 1
        return port

    def ensure_alive(self) -> List[int]:
        """Health sweep: restart every dead worker; returns the shard
        indexes that were restarted."""
        restarted = [i for i, ok in enumerate(self.alive()) if not ok]
        for i in restarted:
            self.restart(i)
        return restarted

    # -- live resharding ------------------------------------------------------

    def rebalance(self, new_shards: int, *, batch: int = 512,
                  drain_threshold: int = 64,
                  max_rounds: int = 256) -> "Any":
        """Live-migrate the fleet to ``new_shards`` workers on the op
        log, without stopping service.

        The old workers keep serving while a new fleet is seeded from
        an LSN-watermarked snapshot and caught up by replaying the WAL
        tail; only the final drain-and-cutover pauses writes (the pause
        is reported in the returned
        :class:`~repro.database.resharding.MigrationReport`).  The old
        workers linger retired — answering every op with the new
        routing table so stale clients re-route — until
        :meth:`reap_retired` or :meth:`stop`.

        Args:
            new_shards: Target shard count (>= 1; may be smaller than
                the current count — that is a merge).
            batch: Max WAL records fetched per ``migrate_tail`` call.
            drain_threshold: Tail lag (records) under which the
                migrator fences writes for the final exact drain.
            max_rounds: Catch-up round budget before aborting.

        Returns:
            The :class:`~repro.database.resharding.MigrationReport`.

        Raises:
            DatabaseError: If a migration is already in flight, the
                fleet is not running, or the migration aborts (the old
                fleet keeps serving in that case).
            ConfigError: If the supervisor runs without a WAL or
                ``snapshot_dir`` (live resharding replays the op log).
        """
        from repro.database.resharding import ShardMigrator
        return ShardMigrator(self, new_shards, batch=batch,
                             drain_threshold=drain_threshold,
                             max_rounds=max_rounds).run()

    def split(self, factor: int = 2, **kwargs: Any) -> "Any":
        """Live-split every shard ``factor`` ways (N -> N*factor); see
        :meth:`rebalance` for kwargs and semantics."""
        return self.rebalance(self.shards * factor, **kwargs)

    def merge(self, factor: int = 2, **kwargs: Any) -> "Any":
        """Live-merge ``factor`` shards into one (N -> N//factor); see
        :meth:`rebalance` for kwargs and semantics.

        Raises ``DatabaseError`` when the current count does not divide
        evenly by ``factor``.
        """
        if factor < 1 or self.shards % factor:
            raise DatabaseError(
                f"cannot merge {self.shards} shards by factor {factor}")
        return self.rebalance(self.shards // factor, **kwargs)


def _supervised_worker_main(shard_index: int, shards: int, host: str,
                            port: int, snapshot_path: Optional[str],
                            ready_conn: Any,
                            columnar: Optional[bool] = None,
                            wal_mode: str = "off",
                            wal_path: Optional[str] = None,
                            wal_interval: float = 0.0,
                            epoch: int = 0,
                            telemetry: bool = True,
                            slow_op_threshold: float = 0.25,
                            slow_op_path: Optional[str] = None) -> None:
    """Picklable process target (spawn-safe import path)."""
    from repro.runtime.shard_worker import run_shard_worker
    run_shard_worker(shard_index, shards, host, port, snapshot_path,
                     ready_conn, columnar=columnar, wal_mode=wal_mode,
                     wal_path=wal_path, wal_interval=wal_interval,
                     epoch=epoch, telemetry=telemetry,
                     slow_op_threshold=slow_op_threshold,
                     slow_op_path=slow_op_path)
