"""The shard service: out-of-process live shards, one ``WhitePages`` face.

Two halves:

- :class:`ShardServiceClient` (a.k.a. :data:`RemoteShardedDatabase`) —
  a synchronous client that presents the duck-typed ``WhitePages``
  surface over N :class:`~repro.runtime.shard_worker.ShardWorker`
  endpoints.  Point operations route by CRC-32 of the machine name
  (the same :func:`~repro.database.sharding.shard_of` partition the
  in-process sharded database and the per-shard snapshot manifest use);
  queries fan out concurrently over the worker sockets and merge in
  machine-name order, reproducing the single-shard engine's result
  exactly.  Pools, :class:`~repro.core.scheduler.IndexedPoolScheduler`,
  the centralized baseline, and the deployments run against it
  unchanged.
- :class:`ShardSupervisor` — spawns the worker processes, seeds them
  from per-shard v3 snapshot files, health-checks them, and restarts a
  dead worker from its last checkpoint (the PR 4 manifest format, so a
  checkpoint directory is also loadable in-process via
  :func:`~repro.database.sharding.load_sharded_database`).

Semantics and scope
-------------------
The client mirrors the in-process database's semantics with two
documented deltas inherent to crossing a process boundary:

- **Listeners are client-side.**  ``subscribe`` / ``unsubscribe``
  register callbacks in *this client*; they fire for mutations made
  through this client (which returns the authoritative post-mutation
  record from the worker).  Mutations made by other clients of the same
  workers are not observed — same single-writer assumption the indexed
  pool scheduler already makes for its own cache.
- **``exclusive()`` is client-scoped.**  It returns the client's
  operation lock — every *mutation* through this client acquires it —
  giving scheduler attachment and snapshot capture the atomicity they
  need against other threads sharing the client.  Read-only operations
  (each shard-atomic worker-side) deliberately bypass it so concurrent
  queries are not serialised behind one in-flight round trip.
  Cross-*client* atomicity is out of scope, exactly as cross-*process*
  atomicity was for the in-process database.

Failures surface faithfully: worker-side :mod:`repro.errors` exceptions
are re-raised by class name, so ``UnknownMachineError`` from a live
shard behaves like one from a local registry.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import repro.errors as _errors
from repro.database.records import MachineRecord
from repro.database.sharding import (
    ShardedWhitePagesDatabase,
    _merge_by_name,
    _merge_names,
    _MANIFEST_FORMAT,
    _MANIFEST_VERSION,
    _PARTITION_CRC32,
    _shard_file_name,
    save_sharded_database,
    shard_of,
)
from repro.database.wal import WAL_MODES
from repro.database.whitepages import Listener, Predicate
from repro.errors import ConfigError, DatabaseError, RuntimeProtocolError
from repro.runtime.protocol import read_frame_sock, write_frame_sock

__all__ = [
    "ShardServiceClient",
    "RemoteShardedDatabase",
    "ShardSupervisor",
    "parse_endpoints",
    "backoff_delay",
]

#: Seconds a worker gets to report readiness before startup fails.
_READY_TIMEOUT_S = 30.0


def backoff_delay(attempt: int, *, base: float = 0.05, cap: float = 2.0,
                  jitter: float = 0.25,
                  rng: Optional[random.Random] = None) -> float:
    """Exponential backoff with jitter for retry loop ``attempt``
    (0-based): ``min(cap, base·2^attempt)`` scaled by a uniform
    ``±jitter`` factor.  The jitter de-synchronises clients hammering a
    worker endpoint that is mid-restart — without it every retry wave
    lands in lockstep on the exact moment the last one failed."""
    delay = min(cap, base * (2.0 ** attempt))
    spread = (rng or random).uniform(-jitter, jitter)
    return max(0.0, delay * (1.0 + spread))


def parse_endpoints(spec: str) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or space-separated) into pairs."""
    endpoints: List[Tuple[str, int]] = []
    for part in spec.replace(",", " ").split():
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(f"bad shard endpoint {part!r}; want host:port")
        endpoints.append((host, int(port)))
    if not endpoints:
        raise ConfigError("no shard endpoints given")
    return endpoints


def _raise_remote(reply: Dict[str, Any]) -> None:
    """Re-raise a worker error frame as its original exception class."""
    name = reply.get("error", "RuntimeProtocolError")
    exc_type = getattr(_errors, str(name), None)
    if not (isinstance(exc_type, type)
            and issubclass(exc_type, _errors.ReproError)):
        exc_type = RuntimeProtocolError
    raise exc_type(reply.get("message", "shard worker error"))


class _WorkerConnection:
    """One persistent blocking socket to one shard worker.

    A lock serialises request/response pairs (the protocol has no
    correlation ids); on a connection error the next round trip redials
    — with bounded exponential backoff and jitter, because the usual
    cause is a worker mid-restart whose endpoint comes back after a
    beat — and a restarted worker re-binds its old endpoint, so
    recovery is transparent to callers.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 dial_attempts: int = 5):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.dial_attempts = max(1, int(dial_attempts))
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _dial(self) -> socket.socket:
        for attempt in range(self.dial_attempts):
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
            except OSError:
                if attempt + 1 >= self.dial_attempts:
                    raise
                time.sleep(backoff_delay(attempt))
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        raise OSError("unreachable")  # pragma: no cover - loop always exits

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - platform dependent
                    pass
                self._sock = None

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def roundtrip(self, frame: Dict[str, Any], *,
                  idempotent: bool = True) -> Dict[str, Any]:
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    self._sock = self._dial()
                try:
                    write_frame_sock(self._sock, frame)
                except OSError:
                    # Send failed: the worker never dispatched a
                    # complete frame (a truncated one is dropped with
                    # the connection), so a resend after redial is safe
                    # for every verb.  Common after a worker restart
                    # invalidates a cached socket.
                    self._drop()
                    if attempt:
                        raise
                    continue
                try:
                    reply = read_frame_sock(self._sock)
                    break
                except (OSError, RuntimeProtocolError):
                    # The request may have been applied and only the
                    # reply lost — resending a non-idempotent verb here
                    # could double-apply it (e.g. a second `register`
                    # raising DuplicateMachineError for work that
                    # succeeded), so only idempotent requests retry.
                    self._drop()
                    if attempt or not idempotent:
                        raise
        if reply.get("kind") == "error":
            _raise_remote(reply)
        return reply


class ShardServiceClient:
    """``WhitePages`` surface over live out-of-process shard workers.

    Parameters
    ----------
    endpoints:
        One ``(host, port)`` per shard, **in shard order** — endpoint
        ``i`` must serve shard ``i`` of ``len(endpoints)``, since point
        operations route by :func:`shard_of`.
    fan_out:
        Thread pool size for query fan-out (defaults to the shard
        count; 1 = serial).  Unlike the in-process thread fan-out, the
        per-shard work here runs in *worker processes* on real cores —
        the client threads only overlap socket I/O and JSON decode.
    """

    def __init__(self, endpoints: Sequence[Tuple[str, int]], *,
                 fan_out: Optional[int] = None, timeout: float = 30.0):
        endpoints = list(endpoints)
        if not endpoints:
            raise ConfigError("need at least one shard endpoint")
        self._conns = [_WorkerConnection(h, p, timeout=timeout)
                       for h, p in endpoints]
        workers = len(self._conns) if fan_out is None \
            else max(1, min(int(fan_out), len(self._conns)))
        self._executor = (ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="wp-remote")
            if workers >= 2 and len(self._conns) >= 2 else None)
        #: One lock for the whole client: every *mutation* acquires it,
        #: so ``exclusive()`` gives multi-op atomicity w.r.t. other
        #: writers sharing this client; reads bypass it (see module
        #: docstring).
        self._oplock = threading.RLock()
        self._subscriptions: Dict[str, Tuple[Listener, ...]] = {}

    # -- topology -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._conns)

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [(c.host, c.port) for c in self._conns]

    def _conn_for(self, machine_name: str) -> _WorkerConnection:
        return self._conns[shard_of(machine_name, len(self._conns))]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def exclusive(self):
        """The client's operation lock (see module docstring for the
        client-scoped atomicity contract)."""
        return self._oplock

    def _fan_out(self, make_frame: Callable[[int], Dict[str, Any]]
                 ) -> List[Dict[str, Any]]:
        """One round trip per worker; replies in shard order."""
        if self._executor is not None:
            futures = [
                self._executor.submit(conn.roundtrip, make_frame(i))
                for i, conn in enumerate(self._conns)
            ]
            return [f.result() for f in futures]
        return [conn.roundtrip(make_frame(i))
                for i, conn in enumerate(self._conns)]

    # -- client-side listeners ------------------------------------------------

    def subscribe(self, machine_names: Iterable[str], fn: Listener) -> None:
        with self._oplock:
            for name in machine_names:
                self._subscriptions[name] = \
                    self._subscriptions.get(name, ()) + (fn,)

    def unsubscribe(self, machine_names: Iterable[str],
                    fn: Listener) -> None:
        with self._oplock:
            for name in machine_names:
                subs = self._subscriptions.get(name)
                if subs is None:
                    continue
                remaining = tuple(l for l in subs if l != fn)
                if remaining:
                    self._subscriptions[name] = remaining
                else:
                    del self._subscriptions[name]

    def remove_listener(self, fn: Listener) -> None:
        with self._oplock:
            for name in [n for n, subs in self._subscriptions.items()
                         if any(l == fn for l in subs)]:
                remaining = tuple(l for l in self._subscriptions[name]
                                  if l != fn)
                if remaining:
                    self._subscriptions[name] = remaining
                else:
                    del self._subscriptions[name]

    def listener_stats(self) -> Dict[str, int]:
        with self._oplock:
            return {
                "subscribed_machines": len(self._subscriptions),
                "subscription_entries": sum(
                    len(subs) for subs in self._subscriptions.values()),
            }

    def _notify(self, machine_name: str,
                record: Optional[MachineRecord]) -> None:
        for fn in self._subscriptions.get(machine_name, ()):
            fn(machine_name, record)

    # -- registry CRUD --------------------------------------------------------

    def add(self, record: MachineRecord) -> None:
        with self._oplock:
            # Not idempotent: a retried register that actually applied
            # would raise DuplicateMachineError for successful work.
            self._conn_for(record.machine_name).roundtrip(
                {"kind": "register", "row": record.to_row()},
                idempotent=False)
            self._notify(record.machine_name, record)

    def remove(self, machine_name: str) -> MachineRecord:
        with self._oplock:
            reply = self._conn_for(machine_name).roundtrip(
                {"kind": "remove", "name": machine_name}, idempotent=False)
            record = MachineRecord.from_row(reply["row"])
            self._notify(machine_name, None)
            return record

    def get(self, machine_name: str) -> MachineRecord:
        reply = self._conn_for(machine_name).roundtrip(
            {"kind": "get", "name": machine_name})
        return MachineRecord.from_row(reply["row"])

    def update(self, record: MachineRecord) -> None:
        with self._oplock:
            self._conn_for(record.machine_name).roundtrip(
                {"kind": "update", "row": record.to_row()})
            self._notify(record.machine_name, record)

    def update_dynamic(self, machine_name: str, **dynamic) -> MachineRecord:
        from repro.runtime.shard_worker import encode_dynamic
        with self._oplock:
            reply = self._conn_for(machine_name).roundtrip({
                "kind": "update_dynamic", "name": machine_name,
                "dynamic": encode_dynamic(dynamic)})
            record = MachineRecord.from_row(reply["row"])
            self._notify(machine_name, record)
            return record

    def __len__(self) -> int:
        return sum(r["count"]
                   for r in self._fan_out(lambda i: {"kind": "len"}))

    def __contains__(self, machine_name: str) -> bool:
        return bool(self._conn_for(machine_name).roundtrip(
            {"kind": "contains", "name": machine_name})["contains"])

    def names(self) -> List[str]:
        return _merge_names(
            [r["names"] for r in self._fan_out(lambda i: {"kind": "names"})])

    # -- matching -------------------------------------------------------------

    def _match_frames(self, plan: Any, include_taken: bool,
                      names_only: bool) -> Optional[Dict[str, Any]]:
        """The shared ``match`` request, or None for an unsatisfiable
        plan (short-circuits without touching the wire)."""
        from repro.core.plan import QueryPlan, compile_plan
        from repro.runtime.shard_worker import clauses_to_wire
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return None
        return {"kind": "match", "clauses": clauses_to_wire(plan),
                "include_taken": include_taken, "names_only": names_only}

    def match(self, plan: Any = None, *, include_taken: bool = False
              ) -> List[MachineRecord]:
        """Fan the compiled clauses out to every worker; merge rows in
        name order (record- and order-identical to the in-process
        engines — the shard-service property tests gate this)."""
        frame = self._match_frames(plan, include_taken, names_only=False)
        if frame is None:
            return []
        replies = self._fan_out(lambda i: frame)
        parts = [[MachineRecord.from_row(row) for row in r["rows"]]
                 for r in replies]
        return _merge_by_name(parts)

    def match_names(self, plan: Any = None, *,
                    include_taken: bool = False) -> List[str]:
        """Names only — the cheap-wire form for bulk candidate
        enumeration (mirrors :meth:`ParallelMatcher.match_names`)."""
        frame = self._match_frames(plan, include_taken, names_only=True)
        if frame is None:
            return []
        return _merge_names(
            [r["names"] for r in self._fan_out(lambda i: frame)])

    def count(self, plan: Any = None, *, include_taken: bool = False) -> int:
        from repro.core.plan import QueryPlan, compile_plan
        from repro.runtime.shard_worker import clauses_to_wire
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return 0
        frame = {"kind": "count", "clauses": clauses_to_wire(plan),
                 "include_taken": include_taken}
        return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def scan(self, predicate: Optional[Predicate] = None,
             include_taken: bool = False) -> List[MachineRecord]:
        """Deprecated O(n) walk: workers ship their records (name
        order), the opaque predicate runs client-side."""
        frame = {"kind": "scan", "include_taken": include_taken}
        replies = self._fan_out(lambda i: frame)
        parts = [[MachineRecord.from_row(row) for row in r["rows"]]
                 for r in replies]
        records = _merge_by_name(parts)
        if predicate is None:
            return records
        return [rec for rec in records if predicate(rec)]

    def count_up(self) -> int:
        return sum(r["count"]
                   for r in self._fan_out(lambda i: {"kind": "count_up"}))

    # -- take / release -------------------------------------------------------

    def take(self, machine_name: str, pool_name: str) -> bool:
        with self._oplock:
            return bool(self._conn_for(machine_name).roundtrip({
                "kind": "take", "name": machine_name,
                "pool": pool_name})["taken"])

    def take_all(self, machine_names: Iterable[str],
                 pool_name: str) -> List[str]:
        """Bulk take: one ``take_all`` round trip per involved shard,
        result in the caller's name order (matching the in-process
        loop's semantics without a per-machine round trip)."""
        names = list(machine_names)
        if not names:
            return []
        groups: Dict[int, List[str]] = {}
        for name in names:
            groups.setdefault(shard_of(name, len(self._conns)),
                              []).append(name)
        taken: Set[str] = set()
        with self._oplock:
            for i, group in groups.items():
                reply = self._conns[i].roundtrip({
                    "kind": "take_all", "names": group, "pool": pool_name})
                taken.update(reply["names"])
        return [name for name in names if name in taken]

    def release(self, machine_name: str, pool_name: str) -> None:
        with self._oplock:
            self._conn_for(machine_name).roundtrip({
                "kind": "release", "name": machine_name, "pool": pool_name})

    def release_pool(self, pool_name: str) -> int:
        frame = {"kind": "release_pool", "pool": pool_name}
        with self._oplock:
            return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def holder_of(self, machine_name: str) -> Optional[str]:
        return self._conn_for(machine_name).roundtrip(
            {"kind": "holder_of", "name": machine_name})["holder"]

    def taken_count(self) -> int:
        frame = {"kind": "taken_count"}
        return sum(r["count"] for r in self._fan_out(lambda i: frame))

    def free_names(self) -> Set[str]:
        frame = {"kind": "free_names"}
        replies = self._fan_out(lambda i: frame)
        free: Set[str] = set()
        for r in replies:
            free.update(r["names"])
        return free

    # -- observability / persistence ------------------------------------------

    def health(self) -> List[Dict[str, Any]]:
        """Per-worker health frames, in shard order."""
        return self._fan_out(lambda i: {"kind": "health"})

    def index_stats(self) -> Dict[str, Any]:
        per_shard = [h["index_stats"] for h in self.health()]
        return {
            "shards": len(self._conns),
            "machines": sum(s["machines"] for s in per_shard),
            "free": sum(s["free"] for s in per_shard),
            "taken": sum(s["taken"] for s in per_shard),
            "per_shard": per_shard,
        }

    def inject_fault(self, shard_index: int,
                     triggers: Optional[Dict[str, int]] = None, *,
                     delays: Optional[Dict[str, float]] = None
                     ) -> Dict[str, Any]:
        """Arm fault injection in one worker — the client face of the
        harness, for durability tests, adversarial scenarios, and
        game-day drills.

        ``triggers`` are crash-point countdowns (SIGKILL on expiry;
        empty dict disarms); ``delays`` map shard verbs (or ``"*"``) to
        seconds of added latency — the slow-worker brownout knob (empty
        dict disarms).  Passing only one map leaves the other family's
        armed state untouched.
        """
        frame: Dict[str, Any] = {"kind": "fault"}
        if triggers is not None:
            frame["triggers"] = dict(triggers)
        if delays is not None:
            frame["delays"] = dict(delays)
        return self._conns[shard_index].roundtrip(frame)

    def wal_stats(self) -> Dict[str, Any]:
        """Fleet-wide write-ahead-log counters (from ``health``):
        per-shard mode/LSN/sync stats plus the aggregate append, sync,
        and byte totals — the observability face of the durability
        knob."""
        per_shard = [h.get("wal", {"mode": "off"}) for h in self.health()]
        return {
            "shards": len(self._conns),
            "modes": sorted({str(s.get("mode", "off")) for s in per_shard}),
            "appended": sum(int(s.get("appended", 0)) for s in per_shard),
            "syncs": sum(int(s.get("syncs", 0)) for s in per_shard),
            "bytes": sum(int(s.get("bytes", 0)) for s in per_shard),
            "per_shard": per_shard,
        }

    def snapshot_shard(self, shard_index: int, path: Union[str, Path],
                       version: int = 3) -> Dict[str, Any]:
        """Ask one worker to write its own snapshot file (``version=4``
        adds the worker-side binary column sidecar)."""
        with self._oplock:
            return self._conns[shard_index].roundtrip(
                {"kind": "snapshot", "path": str(path), "version": version})

    def reset(self, records: Iterable[MachineRecord] = ()) -> None:
        """Replace every worker's shard with freshly seeded state."""
        groups: List[List[List[Any]]] = [[] for _ in self._conns]
        for record in records:
            groups[shard_of(record.machine_name,
                            len(self._conns))].append(record.to_row())
        with self._oplock:
            self._fan_out(lambda i: {"kind": "reset", "rows": groups[i]})
            self._subscriptions.clear()

    def shutdown_workers(self) -> None:
        """Best-effort ``shutdown`` verb to every worker."""
        for conn in self._conns:
            try:
                conn.roundtrip({"kind": "shutdown"})
            except (OSError, _errors.ReproError):
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardServiceClient(shards={len(self._conns)}, "
                f"endpoints={self.endpoints})")


#: The advertised alias: read it as "a sharded white-pages database
#: whose shards happen to live in other processes".
RemoteShardedDatabase = ShardServiceClient




# ---------------------------------------------------------------------------
# Supervisor: spawn / health-check / restart with snapshot recovery
# ---------------------------------------------------------------------------


class ShardSupervisor:
    """Own N shard-worker processes; seed, checkpoint, and restart them.

    Parameters
    ----------
    shards:
        Worker count (one live shard each).
    snapshot_dir:
        Directory for seed and checkpoint files.  The supervisor writes
        PR 4's per-shard v3 manifest layout here, so a checkpoint is
        also loadable in-process via :func:`load_sharded_database`.
    records:
        Initial fleet.  Seeded via per-shard snapshot files — workers
        cold-start from disk in parallel instead of replaying one
        ``register`` round trip per record.
    start_method:
        ``multiprocessing`` start method (default: ``forkserver``-free
        choice — ``fork`` where available for fast spawn, else
        ``spawn``; the worker entry point is spawn-safe either way).
    columnar:
        Column-kernel tri-state handed to every worker (``None`` =
        follow the snapshot version; ``True`` = vectorized matching in
        each worker process even from v3 seeds).
    wal, wal_interval:
        The durability knob (see :mod:`repro.database.wal`).
        ``wal="off"`` (the default) keeps the PR 5 contract below;
        ``"async"``/``"fsync"`` give every worker a per-shard op log
        (``shard_<i>.wal`` in ``snapshot_dir``, which becomes
        mandatory), with ``wal_interval`` as the group-commit window in
        seconds (0 = batch only what shares an event-loop tick).

    Recovery contract: :meth:`restart` re-spawns a dead worker **on its
    original endpoint** from the newest snapshot for its shard (last
    :meth:`checkpoint`, else the initial seed, else empty).  With
    ``wal="off"``, mutations after that snapshot are lost — the white
    pages is a cache of monitoring state, and the paper's monitors
    re-populate it.  With a write-ahead log, the worker replays its op
    log tail over the snapshot and recovery is **crash-exact**: every
    acknowledged mutation survives (``fsync`` — process and power
    crash; ``async`` — process crash), restart converts from a
    data-loss event into a bounded-latency one.
    """

    def __init__(self, shards: int, *, host: str = "127.0.0.1",
                 snapshot_dir: Optional[Union[str, Path]] = None,
                 records: Iterable[MachineRecord] = (),
                 start_method: Optional[str] = None,
                 columnar: Optional[bool] = None,
                 wal: str = "off", wal_interval: float = 0.0):
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if wal not in WAL_MODES:
            raise ConfigError(
                f"wal must be one of {'|'.join(WAL_MODES)}, got {wal!r}")
        if wal_interval < 0:
            raise ConfigError("wal_interval must be >= 0")
        if wal != "off" and snapshot_dir is None:
            raise ConfigError(
                f"wal={wal!r} needs a snapshot_dir to hold the per-shard "
                "op logs")
        self.shards = shards
        self.host = host
        #: Persistence tri-state handed to every worker: ``None`` =
        #: follow the snapshot version, ``True``/``False`` = force the
        #: columnar kernel on or off.
        self.columnar = columnar
        self.wal = wal
        self.wal_interval = float(wal_interval)
        if start_method is None:
            start_method = ("fork" if "fork"
                            in multiprocessing.get_all_start_methods()
                            else "spawn")
        self._ctx = multiprocessing.get_context(start_method)
        self._dir = Path(snapshot_dir) if snapshot_dir is not None else None
        self._seed_records = list(records)
        self._processes: List[Optional[Any]] = [None] * shards
        self._ports: List[int] = [0] * shards
        #: Newest on-disk snapshot per shard (seed, then checkpoints).
        self._snapshots: List[Optional[Path]] = [None] * shards
        self._client: Optional[ShardServiceClient] = None
        self.restarts = 0

    # -- seeding --------------------------------------------------------------

    def _manifest_path(self, stem: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{stem}.json"

    def _write_seed(self) -> None:
        if not self._seed_records or self._dir is None:
            return
        self._dir.mkdir(parents=True, exist_ok=True)
        manifest = self._manifest_path("seed")
        db = ShardedWhitePagesDatabase(self._seed_records,
                                       shards=self.shards)
        written = save_sharded_database(db, manifest)
        if self.shards == 1:
            self._snapshots[0] = written[0]
        else:
            for i, path in enumerate(written[1:]):
                self._snapshots[i] = path

    def _adopt_snapshots(self) -> Optional[str]:
        """Point ``_snapshots`` at existing on-disk state, newest first.

        The restart-the-world path: a supervisor started over a
        ``snapshot_dir`` that already holds a checkpoint (or seed) for
        this shard count adopts those files, so the workers cold-start
        from them — and, with a write-ahead log, replay their op-log
        tails on top.  Returns the adopted stem, or None.
        """
        if self._dir is None:
            return None
        for stem in ("checkpoint", "seed"):
            manifest = self._manifest_path(stem)
            if not manifest.exists():
                continue
            if self.shards == 1:
                # Single-shard artifacts are plain snapshots written in
                # place of the manifest; a *manifest* here belongs to a
                # different shard count — skip it.
                from repro.database.sharding import is_shard_manifest
                if is_shard_manifest(manifest):
                    continue
                self._snapshots[0] = manifest
                return stem
            try:
                meta = json.loads(manifest.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(meta, dict) or \
                    meta.get("format") != _MANIFEST_FORMAT or \
                    meta.get("shards") != self.shards:
                continue
            files = [self._dir / str(name)
                     for name in meta.get("files", [])]
            if len(files) != self.shards or \
                    not all(f.exists() for f in files):
                continue
            for i, path in enumerate(files):
                self._snapshots[i] = path
            return stem
        return None

    def _wal_path(self, shard_index: int) -> Optional[str]:
        if self.wal == "off" or self._dir is None:
            return None
        return str(self._dir / f"shard_{shard_index}.wal")

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, shard_index: int, port: int) -> int:
        """Start worker ``shard_index``; returns the bound port."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        snapshot = self._snapshots[shard_index]
        process = self._ctx.Process(
            target=_supervised_worker_main,
            args=(shard_index, self.shards, self.host, port,
                  str(snapshot) if snapshot else None, child_conn,
                  self.columnar, self.wal, self._wal_path(shard_index),
                  self.wal_interval),
            daemon=True,
            name=f"shard-worker-{shard_index}",
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT_S):
            process.terminate()
            raise DatabaseError(
                f"shard worker {shard_index} did not report ready within "
                f"{_READY_TIMEOUT_S}s")
        try:
            ready = parent_conn.recv()
        except EOFError as exc:
            # Worker died before reporting (e.g. a transient bind
            # failure racing a just-killed listener during restart).
            process.join(timeout=5.0)
            raise DatabaseError(
                f"shard worker {shard_index} died during startup") from exc
        finally:
            parent_conn.close()
        self._processes[shard_index] = process
        self._ports[shard_index] = ready["port"]
        return ready["port"]

    def start(self) -> "ShardSupervisor":
        if any(p is not None for p in self._processes):
            raise DatabaseError("supervisor already started")
        if self._seed_records and self._dir is None:
            raise ConfigError(
                "seeding from records needs a snapshot_dir to stage the "
                "per-shard files in")
        if self._seed_records:
            # Explicit records are an explicit re-seed: they win over
            # whatever the snapshot directory already holds — including
            # any stale op logs, which describe the *previous* fleet
            # and must not replay over the new seed.
            self._write_seed()
            for i in range(self.shards):
                wal_path = self._wal_path(i)
                if wal_path:
                    try:
                        Path(wal_path).unlink()
                    except FileNotFoundError:
                        pass
        else:
            self._adopt_snapshots()
        if self.wal != "off":
            assert self._dir is not None  # enforced in __init__
            self._dir.mkdir(parents=True, exist_ok=True)
        for i in range(self.shards):
            self._spawn(i, 0)
        return self

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [(self.host, port) for port in self._ports]

    def client(self, **kwargs: Any) -> ShardServiceClient:
        """A connected client over this supervisor's endpoints (one
        shared instance; pass kwargs through for a private one)."""
        if kwargs:
            return ShardServiceClient(self.endpoints, **kwargs)
        if self._client is None:
            self._client = ShardServiceClient(self.endpoints)
        return self._client

    def stop(self) -> None:
        if self._client is not None:
            self._client.shutdown_workers()
            self._client.close()
            self._client = None
        else:
            try:
                with ShardServiceClient(self.endpoints, timeout=5.0) as c:
                    c.shutdown_workers()
            except OSError:  # pragma: no cover - best effort
                pass
        for i, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            self._processes[i] = None

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- health / recovery ----------------------------------------------------

    def alive(self) -> List[bool]:
        return [p is not None and p.is_alive() for p in self._processes]

    def health(self) -> List[Dict[str, Any]]:
        return self.client().health()

    def checkpoint(self, stem: str = "checkpoint") -> Path:
        """Ask every worker to write its shard's v3 snapshot; compose
        the manifest.  Returns the manifest path (a valid
        :func:`load_sharded_database` input).

        The snapshot text never crosses the wire — each worker writes
        its own file (atomic rename) and reports the CRC the manifest
        needs.  The per-shard captures run under the client's exclusive
        hold, mirroring :func:`save_sharded_database`'s guarantee that
        a concurrent multi-shard mutation (through this client) cannot
        straddle two shard files.
        """
        if self._dir is None:
            raise ConfigError("checkpoint needs a snapshot_dir")
        self._dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self._manifest_path(stem)
        client = self.client()
        if self.shards == 1:
            reply = client.snapshot_shard(0, manifest_path)
            self._snapshots[0] = Path(reply["path"])
            return manifest_path
        files = [_shard_file_name(manifest_path, i)
                 for i in range(self.shards)]
        checksums: List[int] = []
        machines = 0
        with client.exclusive():
            for i, name in enumerate(files):
                reply = client.snapshot_shard(i, self._dir / name)
                checksums.append(int(reply["crc"]))
                machines += int(reply["machines"])
                self._snapshots[i] = self._dir / name
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "partition": _PARTITION_CRC32,
            "shards": self.shards,
            "snapshot_version": 3,
            "machines": machines,
            "files": files,
            "checksums": checksums,
        }
        from repro.database.persistence import atomic_write_text
        atomic_write_text(manifest_path,
                          json.dumps(manifest, indent=2) + "\n")
        return manifest_path

    def restart(self, shard_index: int) -> int:
        """Re-spawn one worker on its original endpoint from the newest
        snapshot for its shard.  Returns the (unchanged) port."""
        process = self._processes[shard_index]
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            self._processes[shard_index] = None
        port = self._ports[shard_index]
        # The dead listener may linger in TIME_WAIT for a beat; retry
        # the rebind with backoff + jitter (so N shards recovering at
        # once don't re-collide on every wave) rather than failing.
        deadline = time.monotonic() + _READY_TIMEOUT_S
        attempt = 0
        while True:
            try:
                self._spawn(shard_index, port)
                break
            except DatabaseError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(backoff_delay(attempt, base=0.1))
                attempt += 1
        self.restarts += 1
        return port

    def ensure_alive(self) -> List[int]:
        """Health sweep: restart every dead worker; returns the shard
        indexes that were restarted."""
        restarted = [i for i, ok in enumerate(self.alive()) if not ok]
        for i in restarted:
            self.restart(i)
        return restarted


def _supervised_worker_main(shard_index: int, shards: int, host: str,
                            port: int, snapshot_path: Optional[str],
                            ready_conn: Any,
                            columnar: Optional[bool] = None,
                            wal_mode: str = "off",
                            wal_path: Optional[str] = None,
                            wal_interval: float = 0.0) -> None:
    """Picklable process target (spawn-safe import path)."""
    from repro.runtime.shard_worker import run_shard_worker
    run_shard_worker(shard_index, shards, host, port, snapshot_path,
                     ready_conn, columnar=columnar, wal_mode=wal_mode,
                     wal_path=wal_path, wal_interval=wal_interval)
