"""The local directory service tracking resource-pool instances.

"Pool managers keep track of resource pools via a local directory service.
Once a query has been mapped to a pool name, the pool manager uses the
directory service to retrieve pointers (i.e., machine names and TCP/UDP
ports) to all instances of resource pools with the particular name"
(Section 5.2.2).

Entries are ``(pool_name, instance_number) -> endpoint``.  The directory
also records sibling pool managers so delegation (TTL + visited list) has
peers to forward to.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import DirectoryError
from repro.net.address import Endpoint

__all__ = ["PoolInstanceEntry", "LocalDirectoryService"]


@dataclass(frozen=True)
class PoolInstanceEntry:
    """A pointer to one live resource-pool instance.

    ``mode`` distinguishes the two multi-instance schemes of Section 7:

    - ``"replica"`` — instances hold the *same* machines (Figure 8); a
      pool manager picks one at random.
    - ``"fragment"`` — instances partition the machines of a split pool
      (Figure 7); a pool manager queries *all* of them concurrently and
      aggregates the results.
    """

    pool_name: str
    instance_number: int
    endpoint: Endpoint
    mode: str = "replica"

    def __str__(self) -> str:
        return f"{self.pool_name}#{self.instance_number}@{self.endpoint}"


class LocalDirectoryService:
    """Per-domain registry of pool instances and peer pool managers."""

    def __init__(self, domain: str = "default"):
        self.domain = domain
        self._lock = threading.RLock()
        self._pools: Dict[str, Dict[int, PoolInstanceEntry]] = {}
        self._peer_pool_managers: List[Endpoint] = []

    # -- pool instances -----------------------------------------------------------

    def register(self, pool_name: str, instance_number: int,
                 endpoint: Endpoint, mode: str = "replica"
                 ) -> PoolInstanceEntry:
        """Register a pool instance; pools self-register after initialising."""
        if mode not in ("replica", "fragment"):
            raise DirectoryError(f"unknown pool instance mode {mode!r}")
        entry = PoolInstanceEntry(pool_name, instance_number, endpoint, mode)
        with self._lock:
            instances = self._pools.setdefault(pool_name, {})
            if instance_number in instances:
                raise DirectoryError(
                    f"instance {instance_number} of pool {pool_name!r} "
                    "already registered"
                )
            instances[instance_number] = entry
        return entry

    def deregister(self, pool_name: str, instance_number: int) -> None:
        with self._lock:
            instances = self._pools.get(pool_name)
            if not instances or instance_number not in instances:
                raise DirectoryError(
                    f"instance {instance_number} of pool {pool_name!r} not found"
                )
            del instances[instance_number]
            if not instances:
                del self._pools[pool_name]

    def lookup(self, pool_name: str) -> List[PoolInstanceEntry]:
        """All live instances of ``pool_name`` (possibly empty)."""
        with self._lock:
            instances = self._pools.get(pool_name, {})
            return [instances[i] for i in sorted(instances)]

    def pool_names(self) -> List[str]:
        with self._lock:
            return sorted(self._pools)

    def instance_count(self, pool_name: str) -> int:
        with self._lock:
            return len(self._pools.get(pool_name, {}))

    def next_instance_number(self, pool_name: str) -> int:
        """Smallest unused instance number for a new replica."""
        with self._lock:
            used = set(self._pools.get(pool_name, {}))
            n = 0
            while n in used:
                n += 1
            return n

    # -- peer pool managers ----------------------------------------------------------

    def add_peer_pool_manager(self, endpoint: Endpoint) -> None:
        with self._lock:
            if endpoint not in self._peer_pool_managers:
                self._peer_pool_managers.append(endpoint)

    def peer_pool_managers(self) -> List[Endpoint]:
        with self._lock:
            return list(self._peer_pool_managers)
