"""White-pages persistence: JSON snapshots of the machine database.

The paper's database was an operational store maintained by
administrators; a library users can adopt needs the fleet definition to
survive restarts and travel between tools.  Version 2 is stable
pretty-printed JSON — one object per machine, field names matching
Figure 3's schema — so fleets can be version-controlled and diffed.

**Format version 3** (the default write format) is the compact cold-start
encoding: machine records as *positional rows* (layout declared by the
embedded ``row_schema``, which must equal
:data:`~repro.database.records.RECORD_ROW_FIELDS`), no indentation, and
service flags packed into a bit mask.  At 100k records this cuts the
snapshot to a fraction of the v2 size, and loading goes through
:meth:`~repro.database.records.MachineRecord.from_row` — a fast loader
that skips the per-field dict dispatch and re-validation of the v2
record parser, which dominated v2 cold start.  Both v1 and v2 files
still load through the dict path; ``version=2`` keeps writing the
diff-friendly format for fleets that are version-controlled.

Format versions 2 and 3 embed an image of the
:class:`~repro.database.indexes.AttributeIndexCatalog` so startup can
*restore* the indexes instead of rebuilding them from scratch — the
O(N·attrs·log N) tokenise-and-sort pass that used to dominate cold
start at large N.  The index section is guarded twice:

- an **index schema version** (:data:`~repro.database.indexes
  .INDEX_SCHEMA_VERSION`): a snapshot written under different token/
  layout semantics is never restored;
- a **checksum** over the canonical record section: an index section
  whose *records* were edited out from under it (hand-edited fleet
  file, partial merge touching machines) is detected and discarded;
- **structural validation** on restore: misaligned or unsorted
  sorted-index arrays and malformed posting containers are rejected.

Any guard failure — or a version-1 snapshot, which has no index section —
falls back to the rebuild path silently; restoring is purely a startup
optimisation, never a semantic dependency.  The guards do not extend to
a *structurally valid but content-edited* index section (e.g. a name
deleted from one posting list by hand): like any database file content,
the index section is trusted once its schema, record checksum, and
structure check out — delete the ``indexes`` key (or load with
``use_index_snapshot=False``) to force a rebuild after manual edits.

**Format version 4** is v3 plus a binary **column sidecar**
(``<snapshot>.cols``, see :mod:`repro.database.columnar`): the
numerically-coercible attribute values packed as little-endian float64
columns with per-column CRCs, which :func:`load_database` attaches by
mmap so the columnar match engine is warm after page faults instead of
after an O(N·attrs) rebuild.  v4 snapshots load as columnar databases
by default (``columnar=False`` opts out; ``columnar=True`` enables the
engine for *any* version by rebuilding columns from the rows).  The
fallback ladder mirrors the index image: a missing, truncated, or
CRC-mismatched sidecar silently rebuilds the columns from the rows,
and a corrupt column surfacing later (CRCs are checked lazily, on the
first clause that touches a column) rebuilds at that point — the main
JSON file remains the single source of truth.  Because the sidecar is
binary, v4 cannot be produced by :func:`dumps_database`; use
:func:`save_database`.
"""

from __future__ import annotations

import gc
import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.database.fields import MachineState
from repro.database.indexes import AttributeIndexCatalog, pack_array
from repro.database.records import (
    MachineRecord,
    RECORD_ROW_FIELDS,
    ServiceStatusFlags,
)
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import DatabaseError

__all__ = ["record_to_dict", "record_from_dict", "save_database",
           "load_database", "dumps_database", "loads_database",
           "restore_catalog", "snapshot_wal_lsn", "atomic_write_text"]

_FORMAT_VERSION = 3
#: Versions this loader understands (1 = records only, no index section;
#: 2 = verbose record dicts + index image; 3 = compact positional rows;
#: 4 = v3 + binary column sidecar).
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


def record_to_dict(record: MachineRecord) -> Dict[str, Any]:
    flags = record.service_status_flags
    return {
        "machine_name": record.machine_name,
        "state": str(record.state),
        "current_load": record.current_load,
        "active_jobs": record.active_jobs,
        "available_memory_mb": record.available_memory_mb,
        "available_swap_mb": record.available_swap_mb,
        "last_update_time": record.last_update_time,
        "service_status_flags": {
            "execution_unit_up": flags.execution_unit_up,
            "pvfs_manager_up": flags.pvfs_manager_up,
            "proxy_server_up": flags.proxy_server_up,
        },
        "effective_speed": record.effective_speed,
        "num_cpus": record.num_cpus,
        "max_allowed_load": record.max_allowed_load,
        "machine_object_pointer": record.machine_object_pointer,
        "shared_account": record.shared_account,
        "execution_unit_port": record.execution_unit_port,
        "pvfs_mount_manager_port": record.pvfs_mount_manager_port,
        "user_groups": sorted(record.user_groups),
        "tool_groups": sorted(record.tool_groups),
        "shadow_account_pool": record.shadow_account_pool,
        "usage_policy": record.usage_policy,
        "admin_parameters": dict(record.admin_parameters),
    }


def record_from_dict(data: Dict[str, Any]) -> MachineRecord:
    try:
        flags_data = data.get("service_status_flags", {})
        return MachineRecord(
            machine_name=data["machine_name"],
            state=MachineState(data.get("state", "up")),
            current_load=float(data.get("current_load", 0.0)),
            active_jobs=int(data.get("active_jobs", 0)),
            available_memory_mb=float(data.get("available_memory_mb", 512.0)),
            available_swap_mb=float(data.get("available_swap_mb", 1024.0)),
            last_update_time=float(data.get("last_update_time", 0.0)),
            service_status_flags=ServiceStatusFlags(
                execution_unit_up=bool(
                    flags_data.get("execution_unit_up", True)),
                pvfs_manager_up=bool(flags_data.get("pvfs_manager_up", True)),
                proxy_server_up=bool(flags_data.get("proxy_server_up", True)),
            ),
            effective_speed=float(data.get("effective_speed", 300.0)),
            num_cpus=int(data.get("num_cpus", 1)),
            max_allowed_load=float(data.get("max_allowed_load", 4.0)),
            machine_object_pointer=data.get("machine_object_pointer", ""),
            shared_account=data.get("shared_account"),
            execution_unit_port=int(data.get("execution_unit_port", 7070)),
            pvfs_mount_manager_port=int(
                data.get("pvfs_mount_manager_port", 7071)),
            user_groups=frozenset(data.get("user_groups", ["public"])),
            tool_groups=frozenset(data.get("tool_groups", ["general"])),
            shadow_account_pool=data.get("shadow_account_pool", ""),
            usage_policy=data.get("usage_policy"),
            admin_parameters=dict(data.get("admin_parameters", {})),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DatabaseError(f"malformed machine record: {exc}") from exc


def _machines_checksum(machines: List[Any]) -> int:
    """CRC over the canonical serialisation of the record section.

    Canonical = compact separators + sorted keys, so the value is stable
    across dump → parse → re-dump (JSON floats round-trip through repr).
    Works for both v2 dicts and v3 rows.
    """
    canon = json.dumps(machines, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode("utf-8"))


def _index_image_to_row_ids(image: Dict[str, Any],
                            row_of: Dict[str, int]) -> Dict[str, Any]:
    """Re-encode a catalog image's machine names as record-row indices.

    The records section already stores every machine name once (rows are
    in name order), so the v3 index section references machines by row
    number instead of repeating multi-byte name strings in every posting
    and sorted array — the bulk of the v2 index section's size.
    Singleton postings (most tokens of high-cardinality attributes like
    machine names and measured loads) collapse to a bare row id, and the
    sorted sections' parallel arrays are packed little-endian base64
    (float64 values, uint32 row ids): one string token each instead of
    one number token per machine, which is most of what makes the v3
    parse fast.
    """
    def posting_ids(names: List[str]) -> Any:
        ids = [row_of[n] for n in names]
        return ids[0] if len(ids) == 1 else ids

    return {
        "schema": image["schema"],
        "encoding": "rowid",
        "hash": {
            attr: {token: posting_ids(names)
                   for token, names in postings.items()}
            for attr, postings in image["hash"].items()
        },
        "sorted": {
            attr: {"values": pack_array("d", block["values"]),
                   "names": pack_array(
                       "I", [row_of[n] for n in block["names"]])}
            for attr, block in image["sorted"].items()
        },
    }


def _raw_machines_span(text: str) -> Optional[str]:
    """The byte-exact ``machines`` array of a v3 dump, or None.

    v3 dumps are written by this module with fixed serialisation options
    (sorted keys, compact separators), so the machines array always sits
    between the literal ``"machines":`` and ``,"row_schema":`` markers.
    Checksumming this span directly saves the O(file) canonical re-dump
    of the record section on the cold-start path; a file that was
    reformatted by hand simply misses the span (or mismatches) and falls
    back to the canonical computation.
    """
    start = text.find('"machines":')
    if start < 0:
        return None
    start += len('"machines":')
    end = text.find(',"row_schema":', start)
    if end < 0:
        return None
    return text[start:end]


def dumps_database(db: WhitePagesDatabase, *,
                   include_indexes: bool = True,
                   version: int = _FORMAT_VERSION,
                   wal_lsn: Optional[int] = None) -> str:
    """Serialise the database (records + optional index image).

    ``version=3`` (the default) writes the compact positional-row
    format; ``version=2`` writes the pretty-printed dict-per-machine
    format for fleets that live under version control.  ``version=4``
    is rejected here — its column sidecar is a separate binary file,
    so only the path-based :func:`save_database` can write it.

    ``wal_lsn`` embeds a write-ahead-log watermark (the LSN of the last
    op this snapshot includes, see :mod:`repro.database.wal`): landing
    it inside the snapshot makes watermark and records atomic under one
    ``os.replace``, which is what lets a crash between checkpoint and
    log truncation replay as a no-op instead of a double-apply.
    """
    if version == 4:
        raise DatabaseError(
            "format v4 writes a binary column sidecar next to the "
            "snapshot; use save_database() with a path")
    if version not in (2, 3):
        raise DatabaseError(f"cannot write snapshot version {version!r}")
    # One atomic capture: records and catalog image from the same lock
    # hold, so the checksum can never bless an index section that
    # reflects a mutation the record section missed.
    with db.exclusive():
        records, catalog_image = db.snapshot_state()
        taken = db.holders()
    return _dumps_payload(records, catalog_image,
                          include_indexes=include_indexes, version=version,
                          wal_lsn=wal_lsn, taken=taken)


def _dumps_payload(records: List[MachineRecord],
                   catalog_image: Dict[str, Any], *,
                   include_indexes: bool, version: int,
                   columns_meta: Optional[Dict[str, Any]] = None,
                   wal_lsn: Optional[int] = None,
                   taken: Optional[Dict[str, str]] = None) -> str:
    """Serialise an already-captured (records, catalog image) pair.

    v4 shares the v3 row encoding — same ``row_schema``, same index
    section — plus a ``columns`` key pointing at the binary sidecar.
    The optional ``wal_lsn`` and ``taken`` keys sort after
    ``row_schema`` in the compact serialisation, so the byte-exact
    ``machines`` span the fast loader checksums (see
    :func:`_raw_machines_span`) is unaffected.

    ``taken`` is the machine→pool holder map: take/release is mutable
    state exactly like ``current_load``, so a snapshot that dropped it
    could never be crash-exact (a ``take`` WAL-truncated by a
    checkpoint would vanish on recovery).
    """
    if version in (3, 4):
        machines: List[Any] = [record.to_row() for record in records]
        payload: Dict[str, Any] = {
            "format": "repro.whitepages",
            "version": version,
            "row_schema": list(RECORD_ROW_FIELDS),
            "machines": machines,
        }
        if columns_meta is not None:
            payload["columns"] = columns_meta
    else:
        machines = [record_to_dict(record) for record in records]
        payload = {
            "format": "repro.whitepages",
            "version": 2,
            "machines": machines,
        }
    if wal_lsn is not None:
        payload["wal_lsn"] = int(wal_lsn)
    if taken:
        payload["taken"] = {str(k): str(v) for k, v in taken.items()}
    if include_indexes:
        if version in (3, 4):
            row_of = {record.machine_name: i
                      for i, record in enumerate(records)}
            index_payload = _index_image_to_row_ids(catalog_image, row_of)
        else:
            index_payload = dict(catalog_image)
        index_payload["checksum"] = _machines_checksum(machines)
        payload["indexes"] = index_payload
    if version in (3, 4):
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return json.dumps(payload, indent=2, sort_keys=True)


def restore_catalog(payload: Dict[str, Any],
                    records: List[MachineRecord],
                    *, machines_text: Optional[str] = None
                    ) -> Optional[AttributeIndexCatalog]:
    """Restore the index section of a parsed snapshot, or None.

    None means "rebuild": no index section (version-1 snapshot), an index
    schema this code does not understand, a checksum that does not match
    the record section, or a structurally broken section.  All four are
    legal inputs — the records are the source of truth.

    ``machines_text``, when given, is the byte-exact serialisation of
    the record section (see :func:`_raw_machines_span`): its CRC is
    tried first, skipping the canonical re-dump; on mismatch the
    canonical computation still gets the final word.
    """
    index_payload = payload.get("indexes")
    if not isinstance(index_payload, dict):
        return None
    checksum = index_payload.get("checksum")
    if machines_text is None or \
            checksum != zlib.crc32(machines_text.encode("utf-8")):
        if checksum != _machines_checksum(payload.get("machines", [])):
            return None
    try:
        return AttributeIndexCatalog.from_snapshot(index_payload, records)
    except (ValueError, KeyError, TypeError, AttributeError, IndexError):
        return None


def loads_database(text: str, *, use_index_snapshot: bool = True,
                   columnar: Optional[bool] = None,
                   sidecar_dir: Optional[Union[str, Path]] = None
                   ) -> WhitePagesDatabase:
    """Parse a snapshot (any supported version) into a database.

    ``columnar=None`` (the default) enables the columnar engine for v4
    snapshots; since only :func:`load_database` can reach the binary
    sidecar, a v4 *string* rebuilds its columns from the rows unless
    ``sidecar_dir`` names the directory holding the sidecar file (the
    per-shard manifest loader passes it so shard files keep their mmap
    cold start).  ``columnar=True``/``False`` force the engine on (any
    version) or off.

    Collection is paused for the duration: a bulk load allocates
    millions of long-lived containers and no cycles, so letting the
    generational GC walk the growing heap on its usual thresholds
    multiplies load time several-fold for nothing.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _loads_database_inner(
            text, use_index_snapshot=use_index_snapshot, columnar=columnar,
            sidecar_dir=Path(sidecar_dir) if sidecar_dir is not None else None)
    finally:
        if gc_was_enabled:
            gc.enable()


def _attach_columns(records: List[MachineRecord], version: int,
                    columnar: Optional[bool],
                    columns_meta: Optional[Dict[str, Any]],
                    sidecar_dir: Optional[Path]):
    """The column store for a freshly-parsed snapshot, or None.

    The fallback ladder: mmap-attach the v4 sidecar (name table and
    header eagerly validated, column CRCs lazily) → rebuild columns
    from the rows → plain row-path database.  Every failure is silent:
    the sidecar is an optimisation, the rows are the source of truth.
    """
    want = columnar if columnar is not None else version == 4
    if not want:
        return None
    from repro.database import columnar as _columnar
    if not _columnar.HAVE_NUMPY:
        _columnar.warn_numpy_missing()
        return None
    if isinstance(columns_meta, dict) and sidecar_dir is not None:
        try:
            return _columnar.ColumnStore.from_sidecar(
                sidecar_dir / str(columns_meta.get("file", "")),
                [record.machine_name for record in records],
                header_crc=columns_meta.get("header_crc"))
        except _columnar.ColumnDataError:
            pass  # fall through to the rebuild
    try:
        return _columnar.ColumnStore(records)
    except _columnar.ColumnDataError:  # pragma: no cover - defensive
        return None


def _loads_database_inner(text: str, *, use_index_snapshot: bool,
                          columnar: Optional[bool] = None,
                          sidecar_dir: Optional[Path] = None
                          ) -> WhitePagesDatabase:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatabaseError(f"invalid database JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("format") != "repro.whitepages":
        raise DatabaseError("not a repro.whitepages snapshot")
    version = payload.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {version!r}")
    if version in (3, 4):
        if payload.get("row_schema") != list(RECORD_ROW_FIELDS):
            raise DatabaseError(
                "v3 snapshot row schema does not match this build "
                f"(got {payload.get('row_schema')!r})")
        from_row = MachineRecord.from_row
        try:
            records = [from_row(row) for row in payload.get("machines", [])]
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            raise DatabaseError(f"malformed v3 machine row: {exc}") from exc
        catalog = restore_catalog(
            payload, records, machines_text=_raw_machines_span(text)) \
            if use_index_snapshot else None
        columns = _attach_columns(records, version, columnar,
                                  payload.get("columns"), sidecar_dir)
        return _restore_taken(
            WhitePagesDatabase(records, catalog=catalog, columns=columns),
            payload)
    records = [record_from_dict(m) for m in payload.get("machines", [])]
    catalog = restore_catalog(payload, records) if use_index_snapshot else None
    columns = _attach_columns(records, version, columnar, None, None)
    return _restore_taken(
        WhitePagesDatabase(records, catalog=catalog, columns=columns),
        payload)


def _restore_taken(db: WhitePagesDatabase,
                   payload: Dict[str, Any]) -> WhitePagesDatabase:
    """Re-apply the snapshot's machine→pool holder map, fail-closed."""
    taken = payload.get("taken")
    if not isinstance(taken, dict):
        return db
    for name, pool in taken.items():
        try:
            ok = db.take(str(name), str(pool))
        except DatabaseError as exc:
            raise DatabaseError(
                f"snapshot taken-map names unknown machine {name!r}"
            ) from exc
        if not ok:  # pragma: no cover - single pool per name in a dict
            raise DatabaseError(f"snapshot taken-map conflict on {name!r}")
    return db


def snapshot_wal_lsn(text: str) -> int:
    """The WAL watermark of a snapshot string, or 0.

    0 means "replay everything": pre-WAL snapshots (seed files, v1/v2
    fleets) carry no watermark, and an op log found next to them is by
    definition entirely newer than their contents.

    The compact v3/v4 serialisation makes the key findable without a
    full parse (``"wal_lsn":N`` with fixed separators, near the end of
    the file); anything irregular falls back to ``json.loads``.
    """
    marker = '"wal_lsn":'
    pos = text.rfind(marker)
    if pos < 0:
        return 0
    start = pos + len(marker)
    end = start
    while end < len(text) and (text[end].isdigit() or text[end] in "+- "):
        end += 1
    try:
        return int(text[start:end].strip())
    except ValueError:
        pass
    try:
        return int(json.loads(text).get("wal_lsn", 0))
    except (json.JSONDecodeError, AttributeError, TypeError, ValueError):
        return 0


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Crash-safe file replacement: tmp file, flush, fsync, rename.

    A plain ``write_text`` that dies mid-write leaves a torn file *in
    place* — for a checkpoint that means the next restart loads
    garbage.  Writing to ``<path>.tmp.<pid>`` and ``os.replace``-ing
    guarantees the destination only ever holds the old or the new
    complete contents; the fsync before the rename keeps the rename
    from being durable before the data is.

    The write path is instrumented with the ``checkpoint.*`` crash
    points (:mod:`repro.runtime.faults`) — free no-ops unless a
    durability test has armed an injector.
    """
    from repro.runtime import faults
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        faults.crash_point("checkpoint.before_rename")
        os.replace(tmp, path)
        faults.crash_point("checkpoint.after_rename")
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def save_database(db: WhitePagesDatabase, path: Union[str, Path], *,
                  include_indexes: bool = True,
                  version: int = _FORMAT_VERSION,
                  wal_lsn: Optional[int] = None) -> None:
    """Write a snapshot file (and, for ``version=4``, its sidecar).

    Writes are atomic (tmp + fsync + rename, :func:`atomic_write_text`)
    so a crash mid-save can never leave a torn snapshot that poisons
    the next restart.  v4 captures the records, the catalog image,
    *and* the column arrays under one lock hold, writes ``<path>.cols``,
    then the main JSON (which embeds the sidecar's file name and header
    CRC).
    """
    path = Path(path)
    if version == 4:
        from repro.database import columnar as _columnar
        if not _columnar.HAVE_NUMPY:
            raise DatabaseError(
                "format v4 requires numpy to build the column sidecar "
                "(install 'repro[columnar]' or write version=3)")
        with db.exclusive():
            records, catalog_image = db.snapshot_state()
            taken = db.holders()
            names = [record.machine_name for record in records]
            columns = None
            store = getattr(db, "_columns", None)
            if store is not None:
                try:
                    columns = store.column_arrays(names)
                except _columnar.ColumnDataError:
                    columns = None
            if columns is None:
                columns = _columnar.columns_from_records(records)
        sidecar_name = path.name + ".cols"
        header_crc = _columnar.write_sidecar_file(
            path.with_name(sidecar_name), columns, names)
        text = _dumps_payload(
            records, catalog_image, include_indexes=include_indexes,
            version=4, columns_meta={"file": sidecar_name,
                                     "rows": len(names),
                                     "header_crc": header_crc},
            wal_lsn=wal_lsn, taken=taken)
        atomic_write_text(path, text)
        return
    atomic_write_text(
        path,
        dumps_database(db, include_indexes=include_indexes, version=version,
                       wal_lsn=wal_lsn))


def load_database(path: Union[str, Path], *, use_index_snapshot: bool = True,
                  columnar: Optional[bool] = None) -> WhitePagesDatabase:
    """Load a snapshot file; v4 snapshots mmap-attach their column
    sidecar (``columnar=None`` = auto by version, see
    :func:`loads_database`)."""
    path = Path(path)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _loads_database_inner(
            path.read_text(encoding="utf-8"),
            use_index_snapshot=use_index_snapshot,
            columnar=columnar, sidecar_dir=path.parent)
    finally:
        if gc_was_enabled:
            gc.enable()
