"""White-pages persistence: JSON snapshots of the machine database.

The paper's database was an operational store maintained by
administrators; a library users can adopt needs the fleet definition to
survive restarts and travel between tools.  The format is stable JSON —
one object per machine, field names matching Figure 3's schema — so
fleets can be version-controlled and diffed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.database.fields import MachineState
from repro.database.records import MachineRecord, ServiceStatusFlags
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import DatabaseError

__all__ = ["record_to_dict", "record_from_dict", "save_database",
           "load_database", "dumps_database", "loads_database"]

_FORMAT_VERSION = 1


def record_to_dict(record: MachineRecord) -> Dict[str, Any]:
    flags = record.service_status_flags
    return {
        "machine_name": record.machine_name,
        "state": str(record.state),
        "current_load": record.current_load,
        "active_jobs": record.active_jobs,
        "available_memory_mb": record.available_memory_mb,
        "available_swap_mb": record.available_swap_mb,
        "last_update_time": record.last_update_time,
        "service_status_flags": {
            "execution_unit_up": flags.execution_unit_up,
            "pvfs_manager_up": flags.pvfs_manager_up,
            "proxy_server_up": flags.proxy_server_up,
        },
        "effective_speed": record.effective_speed,
        "num_cpus": record.num_cpus,
        "max_allowed_load": record.max_allowed_load,
        "machine_object_pointer": record.machine_object_pointer,
        "shared_account": record.shared_account,
        "execution_unit_port": record.execution_unit_port,
        "pvfs_mount_manager_port": record.pvfs_mount_manager_port,
        "user_groups": sorted(record.user_groups),
        "tool_groups": sorted(record.tool_groups),
        "shadow_account_pool": record.shadow_account_pool,
        "usage_policy": record.usage_policy,
        "admin_parameters": dict(record.admin_parameters),
    }


def record_from_dict(data: Dict[str, Any]) -> MachineRecord:
    try:
        flags_data = data.get("service_status_flags", {})
        return MachineRecord(
            machine_name=data["machine_name"],
            state=MachineState(data.get("state", "up")),
            current_load=float(data.get("current_load", 0.0)),
            active_jobs=int(data.get("active_jobs", 0)),
            available_memory_mb=float(data.get("available_memory_mb", 512.0)),
            available_swap_mb=float(data.get("available_swap_mb", 1024.0)),
            last_update_time=float(data.get("last_update_time", 0.0)),
            service_status_flags=ServiceStatusFlags(
                execution_unit_up=bool(
                    flags_data.get("execution_unit_up", True)),
                pvfs_manager_up=bool(flags_data.get("pvfs_manager_up", True)),
                proxy_server_up=bool(flags_data.get("proxy_server_up", True)),
            ),
            effective_speed=float(data.get("effective_speed", 300.0)),
            num_cpus=int(data.get("num_cpus", 1)),
            max_allowed_load=float(data.get("max_allowed_load", 4.0)),
            machine_object_pointer=data.get("machine_object_pointer", ""),
            shared_account=data.get("shared_account"),
            execution_unit_port=int(data.get("execution_unit_port", 7070)),
            pvfs_mount_manager_port=int(
                data.get("pvfs_mount_manager_port", 7071)),
            user_groups=frozenset(data.get("user_groups", ["public"])),
            tool_groups=frozenset(data.get("tool_groups", ["general"])),
            shadow_account_pool=data.get("shadow_account_pool", ""),
            usage_policy=data.get("usage_policy"),
            admin_parameters=dict(data.get("admin_parameters", {})),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DatabaseError(f"malformed machine record: {exc}") from exc


def dumps_database(db: WhitePagesDatabase) -> str:
    payload = {
        "format": "repro.whitepages",
        "version": _FORMAT_VERSION,
        "machines": [record_to_dict(db.get(name)) for name in db.names()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def loads_database(text: str) -> WhitePagesDatabase:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatabaseError(f"invalid database JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("format") != "repro.whitepages":
        raise DatabaseError("not a repro.whitepages snapshot")
    if payload.get("version") != _FORMAT_VERSION:
        raise DatabaseError(
            f"unsupported snapshot version {payload.get('version')!r}"
        )
    records = [record_from_dict(m) for m in payload.get("machines", [])]
    return WhitePagesDatabase(records)


def save_database(db: WhitePagesDatabase, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps_database(db), encoding="utf-8")


def load_database(path: Union[str, Path]) -> WhitePagesDatabase:
    return loads_database(Path(path).read_text(encoding="utf-8"))
