"""Live shard migration (split / merge / rebalance) on the op log.

The white-pages fleet can change its shard count **without stopping
service**.  The trick is the same one the write-ahead log already plays
for crash recovery, pointed at a different problem: a shard's state is
``snapshot + log tail``, and both halves can be shipped to a new fleet
while the old one keeps serving.

:class:`ShardMigrator` drives the phases:

1. **Snapshot at a watermark** — every source worker writes a v3
   snapshot embedding its current WAL LSN (``migrate_begin``).  The op
   log is *pinned*: a checkpoint racing the migration defers its
   truncation, so the tail past the watermark stays streamable.
2. **Seed the target fleet** — the snapshots are loaded, re-partitioned
   to the new shard count (holder state re-applied), and written as one
   seed file per target.  New workers spawn from the seeds at the
   **next routing epoch**, on fresh ports, with epoch-suffixed WALs.
   Clients cannot see them yet.
3. **Catch up on the tail** — while sources keep serving, the migrator
   streams each source's log tail past its watermark
   (``migrate_tail``), re-routes every frame under the *new* partition,
   and applies it to the targets.  Rounds repeat until the remaining
   lag is small.
4. **Fence, drain, flip** — sources are retired (every client op now
   gets a :class:`~repro.errors.StaleRoutingError`), the last few
   records are drained *exactly*, and the new routing table is
   published — **targets first, then the fenced sources** — so a client
   can never learn an endpoint that is not yet serving.  Blocked
   clients pick up the table from the refusal (or by polling the
   ``routing`` verb) and retry transparently; the only client-visible
   effect is a pause bounded by the drain, reported as
   :attr:`MigrationReport.cutover_pause_s`.
5. **Adopt and anchor** — the supervisor swaps in the new fleet
   (retired sources linger only to redirect stale clients, see
   :meth:`~repro.database.service.ShardSupervisor.reap_retired`) and
   takes a checkpoint, so a cold restart adopts the *post*-reshard
   topology from the manifest's ``epoch`` field.

Replay correctness notes:

- Point frames (``register``/``update`` route by the record row,
  ``remove``/``update_dynamic``/``take``/``release`` by name) re-route
  one-to-one; each record's history is totally ordered by its old
  owner's log, so per-source in-order replay preserves per-record
  order.
- ``take_all`` splits its name list under the new partition.
- ``release_pool`` carries no names, so replaying source *i*'s logged
  copy is scoped with ``only_from`` to machines the *old* partition
  owned on *i* — an unscoped replay could release a machine re-taken
  later in another source's not-yet-replayed log.
- ``reset`` cannot be re-partitioned (it replaces one whole shard) and
  aborts the migration; the old fleet keeps serving.
- Logged frames carry the epoch stamp of the *old* fleet; every
  replayed frame is re-stamped with the target epoch.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.database.sharding import RoutingTable, shard_of
from repro.errors import ConfigError, DatabaseError

__all__ = ["MigrationReport", "ShardMigrator"]

logger = logging.getLogger(__name__)

#: Per-source retry budget for the post-fence exact drain.  After the
#: fence no new appends can race the reads, so more than a couple of
#: torn-boundary retries means something is genuinely wrong.
_DRAIN_ATTEMPTS = 100


@dataclass
class MigrationReport:
    """What one live reshard did, and what it cost.

    ``cutover_pause_s`` is the client-visible window: the time between
    fencing the sources and publishing the new routing table to them —
    point ops issued inside it stall (retrying transparently) instead
    of failing.  Everything before the fence ran concurrently with
    normal service.
    """

    old_shards: int
    new_shards: int
    old_epoch: int
    new_epoch: int
    machines: int
    tail_records: int
    catchup_rounds: int
    cutover_pause_s: float
    duration_s: float
    checkpoint: Optional[Path] = None
    endpoints: List[Tuple[str, int]] = field(default_factory=list)

    def summary(self) -> str:
        """One log-friendly line describing the migration."""
        return (f"resharded {self.old_shards}->{self.new_shards} shards "
                f"(epoch {self.old_epoch}->{self.new_epoch}): "
                f"{self.machines} machines, {self.tail_records} tail ops "
                f"over {self.catchup_rounds} rounds, cutover pause "
                f"{self.cutover_pause_s * 1e3:.1f} ms, total "
                f"{self.duration_s:.2f} s")


class ShardMigrator:
    """Drive one live reshard of a running
    :class:`~repro.database.service.ShardSupervisor` fleet.

    One-shot: construct, :meth:`run`, discard.  On any failure before
    the routing flip the migration aborts cleanly — sources are
    unfenced (their pinned op logs released), the half-built target
    fleet is torn down, temp files are removed, and the old fleet keeps
    serving as if nothing happened.
    """

    def __init__(self, supervisor: Any, new_shards: int, *,
                 batch: int = 512, drain_threshold: int = 64,
                 max_rounds: int = 256):
        """See :meth:`ShardSupervisor.rebalance` for the knobs.

        Raises:
            ConfigError: when the supervisor has no WAL or no
                ``snapshot_dir`` (live migration is built on both), or
                the counts/knobs are out of range.
        """
        if supervisor.wal == "off":
            raise ConfigError(
                "live resharding replays the op log; start the "
                "supervisor with wal='sync' or wal='async'")
        if supervisor._dir is None:
            raise ConfigError("live resharding needs a snapshot_dir")
        # Range-check the target count through the table type so the
        # backstop lives in exactly one place.
        RoutingTable(0, new_shards)
        if batch < 1 or drain_threshold < 0 or max_rounds < 1:
            raise ConfigError(
                f"bad migration knobs: batch={batch}, "
                f"drain_threshold={drain_threshold}, "
                f"max_rounds={max_rounds}")
        self.supervisor = supervisor
        self.new_shards = int(new_shards)
        self.batch = int(batch)
        self.drain_threshold = int(drain_threshold)
        self.max_rounds = int(max_rounds)
        self.new_epoch = int(supervisor.epoch) + 1
        # Filled in as run() progresses; the abort path tears down
        # whatever subset exists.
        self._began: List[int] = []
        self._target_procs: List[Any] = []
        self._target_ports: List[int] = []
        self._target_conns: List[Any] = []
        self._src_paths: List[Path] = []
        self._seed_paths: List[Path] = []

    # -- phases ---------------------------------------------------------------

    def run(self) -> MigrationReport:
        """Execute the migration; returns the :class:`MigrationReport`.

        Raises:
            DatabaseError: if a migration is already in flight, the
                fleet is not fully alive, the tail never drains within
                ``max_rounds``, or a ``reset`` op appears in a log tail
                (none of these leave the old fleet degraded).
        """
        sup = self.supervisor
        if sup._migrating:
            raise DatabaseError("a reshard is already in progress")
        if not all(sup.alive()):
            raise DatabaseError(
                "cannot reshard a degraded fleet; run ensure_alive() "
                "first")
        t_start = time.monotonic()
        sup._migrating = True
        try:
            try:
                watermarks, machines = self._snapshot_sources()
                self._seed_targets()
                self._spawn_targets()
                tail_records, rounds, last = self._catch_up(watermarks)
                pause, drained = self._cutover(last)
                tail_records += drained
            except BaseException as exc:
                self._abort(exc)
                raise
            self._adopt()
        finally:
            sup._migrating = False
        checkpoint = self._anchor()
        report = MigrationReport(
            old_shards=len(watermarks), new_shards=self.new_shards,
            old_epoch=self.new_epoch - 1, new_epoch=self.new_epoch,
            machines=machines, tail_records=tail_records,
            catchup_rounds=rounds, cutover_pause_s=pause,
            duration_s=time.monotonic() - t_start,
            checkpoint=checkpoint, endpoints=list(sup.endpoints))
        logger.info("%s", report.summary())
        return report

    def _snapshot_sources(self) -> Tuple[List[int], int]:
        """Phase 1: watermarked snapshot per source, op logs pinned."""
        sup = self.supervisor
        client = sup.client()
        sup._dir.mkdir(parents=True, exist_ok=True)
        watermarks: List[int] = []
        machines = 0
        for i in range(sup.shards):
            path = sup._dir / f"reshard_src_{i}.e{self.new_epoch}.json"
            reply = client.migrate_begin(i, path)
            self._began.append(i)
            self._src_paths.append(path)
            watermarks.append(int(reply["watermark"]))
            machines += int(reply["machines"])
        return watermarks, machines

    def _seed_targets(self) -> None:
        """Phase 2: re-partition the snapshots into per-target seeds."""
        from repro.database.persistence import load_database, save_database
        from repro.database.sharding import ShardedWhitePagesDatabase
        sup = self.supervisor
        records = []
        holders: Dict[str, str] = {}
        for path in self._src_paths:
            db = load_database(path, columnar=False)
            records.extend(db.get(name) for name in db.names())
            holders.update(db.holders())
        sharded = ShardedWhitePagesDatabase(records, shards=self.new_shards)
        for name, pool in holders.items():
            # The records-based constructor starts everything free;
            # holder state rides the snapshot's taken-map instead.
            sharded.take(name, pool)
        for j, shard_db in enumerate(sharded.shards):
            path = sup._dir / f"reshard_seed_{j}.e{self.new_epoch}.json"
            save_database(shard_db, path, version=3)
            self._seed_paths.append(path)

    def _spawn_targets(self) -> None:
        """Phase 3: start the next-epoch fleet, invisible to clients."""
        from repro.database.service import _WorkerConnection
        sup = self.supervisor
        for j in range(self.new_shards):
            process, port = sup._spawn_worker(
                j, 0, shards=self.new_shards, epoch=self.new_epoch,
                snapshot_path=str(self._seed_paths[j]),
                wal_path=sup._wal_path(j, epoch=self.new_epoch))
            self._target_procs.append(process)
            self._target_ports.append(port)
            self._target_conns.append(
                _WorkerConnection(sup.host, port))

    def _catch_up(self, watermarks: List[int]
                  ) -> Tuple[int, int, List[int]]:
        """Phase 4: replay log tails until the lag is under threshold.

        Returns ``(records_replayed, rounds, last_lsn_per_source)``.
        """
        sup = self.supervisor
        client = sup.client()
        last = list(watermarks)
        replayed = 0
        for rounds in range(1, self.max_rounds + 1):
            lag = 0
            for i in range(len(last)):
                reply = client.migrate_tail(i, after_lsn=last[i],
                                            max_records=self.batch)
                for lsn, frame in reply["entries"]:
                    self._apply(frame, source_index=i,
                                old_shards=len(last))
                    last[i] = int(lsn)
                    replayed += 1
                lag += max(0, int(reply["wal_lsn"]) - last[i])
            if lag <= self.drain_threshold:
                return replayed, rounds, last
        raise DatabaseError(
            f"reshard could not catch up within {self.max_rounds} "
            f"rounds (write load too high for batch={self.batch}?)")

    def _cutover(self, last: List[int]) -> Tuple[float, int]:
        """Phase 5: fence, drain exactly, publish routing new-side
        first.  Returns ``(pause_seconds, records_drained)``."""
        sup = self.supervisor
        client = sup.client()
        t_fence = time.monotonic()
        for i in range(len(last)):
            client.migrate_cutover(i, retire=True)
        # Exact drain: the sources are fenced, so the tails are frozen
        # — stream until each worker's acknowledged LSN is replayed.
        drained = 0
        for i in range(len(last)):
            for _ in range(_DRAIN_ATTEMPTS):
                reply = client.migrate_tail(i, after_lsn=last[i],
                                            max_records=self.batch)
                for lsn, frame in reply["entries"]:
                    self._apply(frame, source_index=i,
                                old_shards=len(last))
                    last[i] = int(lsn)
                    drained += 1
                if not reply["entries"] and \
                        int(reply["wal_lsn"]) <= last[i]:
                    break
            else:
                raise DatabaseError(
                    f"source shard {i} tail did not drain after "
                    f"fencing (stuck at lsn {last[i]})")
        table = RoutingTable(
            self.new_epoch, self.new_shards,
            [(sup.host, port) for port in self._target_ports])
        wire = table.to_wire()
        # Targets first: only once every target serves the table do the
        # fenced sources start handing it to refused clients.
        for conn in self._target_conns:
            conn.roundtrip({"kind": "migrate_cutover", "routing": wire})
        for i in range(len(last)):
            client.migrate_cutover(i, epoch=self.new_epoch, retire=True,
                                   routing=wire)
        return time.monotonic() - t_fence, drained

    def _adopt(self) -> None:
        """Phase 6a: swap the supervisor's bookkeeping to the new
        fleet; old workers move to the retired list."""
        sup = self.supervisor
        sup._retired.extend(p for p in sup._processes if p is not None)
        sup._resize(self.new_shards)
        sup.epoch = self.new_epoch
        for j in range(self.new_shards):
            sup._processes[j] = self._target_procs[j]
            sup._ports[j] = self._target_ports[j]
            sup._snapshots[j] = self._seed_paths[j]
        for conn in self._target_conns:
            conn.close()
        if sup._client is not None:
            # The shared client would discover the flip lazily on its
            # next refused op; refresh it eagerly so supervisor-level
            # helpers (health, checkpoint) route correctly right away.
            sup._client.refresh_routing()

    def _anchor(self) -> Optional[Path]:
        """Phase 6b: checkpoint the new fleet and sweep temp files.

        Without this a cold restart would adopt the *pre*-reshard
        manifest and miss every op applied after the flip; the fresh
        manifest records the new ``epoch`` so
        :meth:`~repro.database.service.ShardSupervisor.start` resumes
        the post-reshard topology.  Best-effort: a checkpoint failure
        logs and returns ``None`` (the fleet itself is healthy).
        """
        sup = self.supervisor
        try:
            manifest = sup.checkpoint()
        except Exception as exc:  # pragma: no cover - disk-full etc.
            logger.error("post-reshard checkpoint failed: %s", exc)
            return None
        # The checkpoint supersedes the migration artifacts *and* the
        # old fleet's logs (retired workers accept no more writes).
        for path in self._src_paths + self._seed_paths:
            self._unlink(path)
        for i in range(len(self._src_paths)):
            old_wal = sup._wal_path(i, epoch=self.new_epoch - 1)
            if old_wal:
                self._unlink(Path(old_wal))
        return manifest

    # -- replay routing -------------------------------------------------------

    def _apply(self, frame: Dict[str, Any], *, source_index: int,
               old_shards: int) -> None:
        """Re-route one logged frame onto the target fleet.

        Raises ``DatabaseError`` on a frame that cannot be
        re-partitioned (``reset``) or is not a known mutation — either
        aborts the migration.
        """
        kind = frame.get("kind")
        out = dict(frame)
        out["epoch"] = self.new_epoch
        if kind in ("register", "update"):
            self._send(str(out["row"][0]), out)
        elif kind in ("remove", "update_dynamic", "take", "release"):
            self._send(str(out["name"]), out)
        elif kind == "take_all":
            groups: Dict[int, List[str]] = {}
            for name in out.get("names", []):
                groups.setdefault(
                    shard_of(str(name), self.new_shards), []).append(
                        str(name))
            for j, names in groups.items():
                self._target_conns[j].roundtrip(
                    {"kind": "take_all", "names": names,
                     "pool": out["pool"], "epoch": self.new_epoch})
        elif kind == "release_pool":
            scoped = {"kind": "release_pool", "pool": out["pool"],
                      "only_from": [old_shards, source_index],
                      "epoch": self.new_epoch}
            for conn in self._target_conns:
                conn.roundtrip(scoped)
        elif kind == "reset":
            raise DatabaseError(
                "a reset op appeared in the log tail; reset replaces "
                "one whole shard and cannot be re-partitioned — "
                "aborting the live reshard")
        else:
            raise DatabaseError(
                f"unexpected verb {kind!r} in log tail")

    def _send(self, machine_name: str, frame: Dict[str, Any]) -> None:
        """Send one point frame to the target that owns the name."""
        j = shard_of(machine_name, self.new_shards)
        self._target_conns[j].roundtrip(frame, idempotent=False)

    # -- failure handling -----------------------------------------------------

    def _abort(self, cause: BaseException) -> None:
        """Roll back: unfence sources, tear down targets, sweep files.

        The old fleet resumes exactly where it was — fences lift, the
        pinned op logs release (deferred checkpoint truncations become
        effective at the next checkpoint), and nothing was published,
        so no client ever saw the aborted epoch.
        """
        sup = self.supervisor
        logger.warning("aborting reshard to %d shards: %s",
                       self.new_shards, cause)
        client = sup._client
        for i in self._began:
            try:
                if client is not None:
                    client.migrate_cutover(i, retire=False)
            except Exception:  # pragma: no cover - worker crashed too
                logger.exception("could not unfence source shard %d", i)
        for conn in self._target_conns:
            conn.close()
        for process in self._target_procs:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        for path in self._src_paths + self._seed_paths:
            self._unlink(path)
        for j in range(len(self._target_procs)):
            wal_path = sup._wal_path(j, epoch=self.new_epoch)
            if wal_path:
                self._unlink(Path(wal_path))

    @staticmethod
    def _unlink(path: Path) -> None:
        """Best-effort temp-file removal."""
        try:
            Path(path).unlink()
        except OSError:
            pass
