"""Sharded white-pages database: hash-partitioned shards, fanned-out reads.

One :class:`~repro.database.whitepages.WhitePagesDatabase` holds every
record behind one registry lock and one
:class:`~repro.database.indexes.AttributeIndexCatalog` — a single-core,
single-heap ceiling.  :class:`ShardedWhitePagesDatabase` partitions the
machine records across N shards by a **stable hash of the machine name**
(:func:`shard_of`, CRC-32 — deterministic across processes and runs,
unlike ``hash()`` under ``PYTHONHASHSEED``), each shard owning its own
catalog, free set, subscription map, and lock.

Routing and fan-out
-------------------
Point operations (``get`` / ``take`` / ``update_dynamic`` / ``subscribe``
...) route to the owning shard and touch only that shard's lock.  Queries
(``match`` / ``count`` / ``scan`` / ``names``) fan out to every shard and
**merge by machine name**: each shard returns its matches in name order
and the shards partition the name space, so an N-way
:func:`heapq.merge` reproduces *exactly* the single-shard engine's
name-ordered result — same records, same deterministic order.

Fan-out is serial by default.  ``max_workers >= 2`` runs the per-shard
probes on a shared thread pool: per-shard work under CPython's GIL only
overlaps during the C-level portions (bisects, set intersection,
``crc32``), so threads mostly buy latency hiding under concurrent
writers, not CPU scale-out.  For genuine multi-core matching use
:class:`ParallelMatcher`, which forks worker processes that inherit the
built shards copy-on-write and execute per-shard matches truly in
parallel.

Persistence
-----------
:func:`save_sharded_database` dumps one v3 (or, with ``version=4``, one
v4-plus-column-sidecar) snapshot *per shard* plus a small manifest, so
cold start can load (and eventually stream) shards independently;
``shards=1`` falls back to the plain whole-file snapshot.
:func:`load_sharded_database` accepts a manifest **or** any plain
v1/v2/v3 snapshot, coercing it into the requested shard count
(``shards=1`` keeps a restored index catalog; re-sharding rebuilds the
per-shard catalogs from records).

Scheduling layers (:class:`~repro.core.resource_pool.ResourcePool`,
:class:`~repro.core.scheduler.IndexedPoolScheduler`,
:class:`~repro.baselines.central.CentralizedScheduler`) accept either
database through the same duck-typed surface; ``shards=1`` keeps the
single-shard behaviour unchanged.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import threading
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.database.records import MachineRecord
from repro.database.whitepages import Listener, Predicate, WhitePagesDatabase
from repro.errors import ConfigError, DatabaseError

__all__ = [
    "shard_of",
    "RoutingTable",
    "ShardedWhitePagesDatabase",
    "ParallelMatcher",
    "save_sharded_database",
    "load_sharded_database",
    "is_shard_manifest",
    "WhitePages",
]

#: Either database flavour; every consumer below the persistence layer is
#: duck-typed against the shared surface.
WhitePages = Union[WhitePagesDatabase, "ShardedWhitePagesDatabase"]

_MANIFEST_FORMAT = "repro.whitepages.shards"
_MANIFEST_VERSION = 1
#: Partition-function tag recorded in the manifest; a future content- or
#: range-partitioner would mint a new tag rather than reinterpret files.
_PARTITION_CRC32 = "crc32"
#: Backstop against a typo'd shard count turning one snapshot into a
#: directory of thousands of files.
_MAX_SHARDS = 4096


def shard_of(machine_name: str, shards: int) -> int:
    """Stable shard index of ``machine_name`` in an N-shard layout.

    CRC-32 of the UTF-8 name, modulo the shard count: deterministic
    across processes, platforms, and interpreter restarts, which is what
    lets per-shard snapshot files be written by one process and loaded by
    another without a routing table.
    """
    if shards == 1:
        return 0
    return zlib.crc32(machine_name.encode("utf-8")) % shards


class RoutingTable:
    """A versioned shard-routing layout: ``(epoch, shards, endpoints)``.

    PR 4 fixed the shard count at creation; live resharding makes it an
    online knob, so routing is now parameterized by a *table* rather
    than a bare N.  The ``epoch`` is a monotonically increasing version:
    every live reshard bumps it, point-op frames carry it, and a worker
    that sees a frame stamped with a different epoch refuses it with
    :class:`~repro.errors.StaleRoutingError` so the client refreshes
    this table and retries.  ``endpoints`` may be empty for in-process
    (serviceless) uses where only the partition function matters.
    """

    __slots__ = ("epoch", "shards", "endpoints")

    def __init__(self, epoch: int, shards: int,
                 endpoints: Sequence[Tuple[str, int]] = ()):
        if shards < 1 or shards > _MAX_SHARDS:
            raise ConfigError(
                f"routing table shard count must be 1..{_MAX_SHARDS}, "
                f"got {shards}")
        if endpoints and len(endpoints) != shards:
            raise ConfigError(
                f"routing table has {shards} shards but "
                f"{len(endpoints)} endpoints")
        self.epoch = int(epoch)
        self.shards = int(shards)
        self.endpoints = tuple((str(h), int(p)) for h, p in endpoints)

    def shard_of(self, machine_name: str) -> int:
        """The shard index owning ``machine_name`` under this table."""
        return shard_of(machine_name, self.shards)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe encoding carried on ``routing`` reply frames."""
        return {"epoch": self.epoch, "shards": self.shards,
                "endpoints": [list(ep) for ep in self.endpoints]}

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "RoutingTable":
        """Decode a :meth:`to_wire` payload (raises on malformed input)."""
        try:
            return cls(int(data["epoch"]), int(data["shards"]),
                       [(str(h), int(p)) for h, p in
                        data.get("endpoints") or ()])
        except (KeyError, TypeError, ValueError) as exc:
            raise DatabaseError(
                f"malformed routing table payload: {data!r}") from exc

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RoutingTable)
                and self.epoch == other.epoch
                and self.shards == other.shards
                and self.endpoints == other.endpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RoutingTable(epoch={self.epoch}, shards={self.shards}, "
                f"endpoints={len(self.endpoints)})")


def _merge_by_name(parts: Sequence[List[MachineRecord]]
                   ) -> List[MachineRecord]:
    """Merge per-shard name-ordered record lists into one global order.

    Shards partition the name space, so an N-way merge of sorted runs is
    exactly the sorted concatenation — the single-shard engine's order.
    """
    live = [p for p in parts if p]
    if len(live) == 1:
        return live[0]
    return list(heapq.merge(*live, key=lambda r: r.machine_name))


def _merge_names(parts: Sequence[List[str]]) -> List[str]:
    """Same merge for bare name lists (names() / match_names() shapes,
    here and in the shard-service client)."""
    live = [p for p in parts if p]
    if len(live) <= 1:
        return live[0] if live else []
    return list(heapq.merge(*live))


class ShardedWhitePagesDatabase:
    """N hash-partitioned :class:`WhitePagesDatabase` shards, one surface.

    Parameters
    ----------
    records:
        Initial machine records, distributed by :func:`shard_of`.
    shards:
        Shard count (>= 1).  ``shards=1`` delegates every operation to
        the single shard — behaviour (and performance) identical to a
        plain :class:`WhitePagesDatabase`.
    max_workers:
        When >= 2 and ``shards`` > 1, fan ``match``/``count``/``scan``
        out on a shared thread pool (see module docstring for what the
        GIL does and does not allow this to buy).  ``None``/1 = serial.
    columnar:
        Build each shard with the columnar match kernel
        (:mod:`repro.database.columnar`).  The numpy mask sweeps release
        the GIL, so ``max_workers`` fan-out over columnar shards
        overlaps on real cores — the combination the per-record Python
        loop could never reach.
    """

    def __init__(self, records: Iterable[MachineRecord] = (), *,
                 shards: int = 1, max_workers: Optional[int] = None,
                 columnar: bool = False):
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if shards > _MAX_SHARDS:
            raise ConfigError(
                f"shard count {shards} exceeds the {_MAX_SHARDS} backstop")
        groups: List[List[MachineRecord]] = [[] for _ in range(shards)]
        for record in records:
            groups[shard_of(record.machine_name, shards)].append(record)
        self._init_from_shards(
            [WhitePagesDatabase(g, columnar=columnar) for g in groups],
            max_workers)

    @classmethod
    def from_shard_databases(
            cls, shard_dbs: Sequence[WhitePagesDatabase], *,
            max_workers: Optional[int] = None,
            validate_routing: bool = True) -> "ShardedWhitePagesDatabase":
        """Adopt already-built shard databases (the snapshot load path).

        ``validate_routing`` checks every record lives on the shard
        :func:`shard_of` routes it to — a manifest whose files were
        shuffled or renamed would otherwise silently mis-route every
        subsequent point operation.
        """
        shard_dbs = list(shard_dbs)
        if not shard_dbs:
            raise ConfigError("need at least one shard database")
        if len(shard_dbs) > _MAX_SHARDS:
            raise ConfigError(
                f"shard count {len(shard_dbs)} exceeds the "
                f"{_MAX_SHARDS} backstop")
        if validate_routing and len(shard_dbs) > 1:
            n = len(shard_dbs)
            for i, db in enumerate(shard_dbs):
                for name in db.names():
                    if shard_of(name, n) != i:
                        raise DatabaseError(
                            f"record {name!r} found on shard {i} but routes "
                            f"to shard {shard_of(name, n)} of {n}")
        self = cls.__new__(cls)
        self._init_from_shards(shard_dbs, max_workers)
        return self

    def _init_from_shards(self, shard_dbs: List[WhitePagesDatabase],
                          max_workers: Optional[int]) -> None:
        self._shards: List[WhitePagesDatabase] = shard_dbs
        self._max_workers = (0 if not max_workers or max_workers < 2
                             or len(shard_dbs) < 2
                             else min(int(max_workers), len(shard_dbs)))
        self._executor = None
        self._executor_guard = threading.Lock()

    # -- topology -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Tuple[WhitePagesDatabase, ...]:
        """The shard databases, for persistence and fork-based fan-out."""
        return tuple(self._shards)

    @property
    def columnar(self) -> bool:
        """True when every shard runs the columnar match kernel."""
        return all(shard.columnar for shard in self._shards)

    def shard_for(self, machine_name: str) -> WhitePagesDatabase:
        """The shard that owns ``machine_name`` (whether registered or
        not — routing is a pure function of the name)."""
        return self._shards[shard_of(machine_name, len(self._shards))]

    def close(self) -> None:
        """Shut down the fan-out thread pool (no-op when serial)."""
        with self._executor_guard:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def _fan_out(self, fn: Callable[[WhitePagesDatabase], Any]) -> List[Any]:
        """Apply ``fn`` to every shard; results in shard order."""
        if self._max_workers and len(self._shards) > 1:
            executor = self._executor
            if executor is None:
                from concurrent.futures import ThreadPoolExecutor
                with self._executor_guard:
                    if self._executor is None:
                        self._executor = ThreadPoolExecutor(
                            max_workers=self._max_workers,
                            thread_name_prefix="wp-shard")
                    executor = self._executor
            return list(executor.map(fn, self._shards))
        return [fn(shard) for shard in self._shards]

    @contextmanager
    def exclusive(self):
        """Every shard lock, acquired in shard order (cross-shard
        atomicity for snapshot capture and scheduler attachment).

        Shard order is the single global acquisition order — any code
        path that takes more than one shard lock must come through here,
        which is what makes the multi-lock layout deadlock-free.
        """
        acquired: List[Any] = []
        try:
            for shard in self._shards:
                shard._lock.acquire()
                acquired.append(shard._lock)
            yield self
        finally:
            for lock in reversed(acquired):
                lock.release()

    # -- plan-cost knobs (fan the class-attribute contract out) ---------------

    @property
    def intersect_max_paths(self) -> int:
        return self._shards[0].intersect_max_paths

    @intersect_max_paths.setter
    def intersect_max_paths(self, value: int) -> None:
        for shard in self._shards:
            shard.intersect_max_paths = value

    @property
    def intersect_ratio(self) -> float:
        return self._shards[0].intersect_ratio

    @intersect_ratio.setter
    def intersect_ratio(self, value: float) -> None:
        for shard in self._shards:
            shard.intersect_ratio = value

    # -- change listeners -----------------------------------------------------

    def subscribe(self, machine_names: Iterable[str], fn: Listener) -> None:
        """Per-machine subscriptions, grouped and routed per shard."""
        if len(self._shards) == 1:
            self._shards[0].subscribe(machine_names, fn)
            return
        groups: Dict[int, List[str]] = {}
        for name in machine_names:
            groups.setdefault(shard_of(name, len(self._shards)), []).append(name)
        for i, names in groups.items():
            self._shards[i].subscribe(names, fn)

    def unsubscribe(self, machine_names: Iterable[str], fn: Listener) -> None:
        if len(self._shards) == 1:
            self._shards[0].unsubscribe(machine_names, fn)
            return
        groups: Dict[int, List[str]] = {}
        for name in machine_names:
            groups.setdefault(shard_of(name, len(self._shards)), []).append(name)
        for i, names in groups.items():
            self._shards[i].unsubscribe(names, fn)

    def remove_listener(self, fn: Listener) -> None:
        for shard in self._shards:
            shard.remove_listener(fn)

    def listener_stats(self) -> Dict[str, int]:
        stats = [shard.listener_stats() for shard in self._shards]
        return {key: sum(s[key] for s in stats) for key in stats[0]}

    # -- registry CRUD (point ops route to the owning shard) ------------------

    def add(self, record: MachineRecord) -> None:
        self.shard_for(record.machine_name).add(record)

    def remove(self, machine_name: str) -> MachineRecord:
        return self.shard_for(machine_name).remove(machine_name)

    def get(self, machine_name: str) -> MachineRecord:
        return self.shard_for(machine_name).get(machine_name)

    def update(self, record: MachineRecord) -> None:
        self.shard_for(record.machine_name).update(record)

    def update_dynamic(self, machine_name: str, **dynamic) -> MachineRecord:
        return self.shard_for(machine_name).update_dynamic(
            machine_name, **dynamic)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, machine_name: str) -> bool:
        return machine_name in self.shard_for(machine_name)

    def names(self) -> List[str]:
        return _merge_names([shard.names() for shard in self._shards])

    # -- matching -------------------------------------------------------------

    def match(self, plan: Any = None, *, include_taken: bool = False
              ) -> List[MachineRecord]:
        """Fan a compiled plan out to every shard; merge in name order.

        The plan is compiled once here and shared (compilation is
        pure), then each shard executes it against its own catalog; the
        merged result is record- and order-identical to a single-shard
        :meth:`WhitePagesDatabase.match` over the union of the shards.
        """
        if len(self._shards) == 1:
            return self._shards[0].match(plan, include_taken=include_taken)
        from repro.core.plan import QueryPlan, compile_plan
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return []
        parts = self._fan_out(
            lambda shard: shard.match(plan, include_taken=include_taken))
        return _merge_by_name(parts)

    def count(self, plan: Any = None, *, include_taken: bool = False) -> int:
        """Number of matching records; per-shard counts, summed."""
        if len(self._shards) == 1:
            return self._shards[0].count(plan, include_taken=include_taken)
        from repro.core.plan import QueryPlan, compile_plan
        if not isinstance(plan, QueryPlan):
            plan = compile_plan(plan)
        if plan.unsatisfiable:
            return 0
        return sum(self._fan_out(
            lambda shard: shard.count(plan, include_taken=include_taken)))

    def scan(self, predicate: Optional[Predicate] = None,
             include_taken: bool = False) -> List[MachineRecord]:
        """Deprecated O(n) predicate walk, fanned out and name-merged."""
        parts = self._fan_out(
            lambda shard: shard.scan(predicate, include_taken=include_taken))
        return _merge_by_name(parts)

    def count_up(self) -> int:
        return sum(shard.count_up() for shard in self._shards)

    # -- take / release -------------------------------------------------------

    def take(self, machine_name: str, pool_name: str) -> bool:
        return self.shard_for(machine_name).take(machine_name, pool_name)

    def take_all(self, machine_names: Iterable[str],
                 pool_name: str) -> List[str]:
        got: List[str] = []
        for name in machine_names:
            if self.take(name, pool_name):
                got.append(name)
        return got

    def release(self, machine_name: str, pool_name: str) -> None:
        self.shard_for(machine_name).release(machine_name, pool_name)

    def release_pool(self, pool_name: str) -> int:
        return sum(shard.release_pool(pool_name) for shard in self._shards)

    def holder_of(self, machine_name: str) -> Optional[str]:
        return self.shard_for(machine_name).holder_of(machine_name)

    def taken_count(self) -> int:
        return sum(shard.taken_count() for shard in self._shards)

    def free_names(self) -> Set[str]:
        free: Set[str] = set()
        for shard in self._shards:
            free |= shard.free_names()
        return free

    # -- observability / persistence hooks ------------------------------------

    def index_stats(self) -> Dict[str, Any]:
        per_shard = [shard.index_stats() for shard in self._shards]
        return {
            "shards": len(self._shards),
            "machines": sum(s["machines"] for s in per_shard),
            "free": sum(s["free"] for s in per_shard),
            "taken": sum(s["taken"] for s in per_shard),
            "per_shard": per_shard,
        }

    def catalog_snapshot(self) -> Dict[str, Any]:
        if len(self._shards) == 1:
            return self._shards[0].catalog_snapshot()
        raise DatabaseError(
            "a multi-shard database has one catalog per shard; use "
            "save_sharded_database() for snapshots")

    def snapshot_state(self):
        """Single-shard delegation so ``dumps_database`` keeps working at
        ``shards=1``; multi-shard snapshots are per-shard files."""
        if len(self._shards) == 1:
            return self._shards[0].snapshot_state()
        raise DatabaseError(
            "a multi-shard database cannot be captured as one snapshot; "
            "use save_sharded_database()")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(shard) for shard in self._shards]
        return (f"ShardedWhitePagesDatabase(shards={len(self._shards)}, "
                f"machines={sum(sizes)}, sizes={sizes})")


# ---------------------------------------------------------------------------
# Fork-based parallel match fan-out
# ---------------------------------------------------------------------------

#: Forked workers resolve their shard set here.  The registry entry must
#: stay alive in the *parent* for the matcher's lifetime: pool workers
#: that die are re-forked from the parent's current state, and must still
#: find the shards.
_FORK_REGISTRY: Dict[int, Tuple[WhitePagesDatabase, ...]] = {}
_FORK_TOKENS = iter(range(1, 1 << 62))


def _forked_match_names(token: int, shard_index: int, plan_payload: Any,
                        include_taken: bool) -> List[str]:
    """Worker side: run one shard's match, return just the names.

    Names (not records) cross the process boundary: the parent resolves
    them against its own record map, so the IPC cost is a compact string
    list instead of a pickled record per match.
    """
    shard = _FORK_REGISTRY[token][shard_index]
    return [r.machine_name
            for r in shard.match(plan_payload, include_taken=include_taken)]


def _forked_count(token: int, shard_index: int, plan_payload: Any,
                  include_taken: bool) -> int:
    shard = _FORK_REGISTRY[token][shard_index]
    return shard.count(plan_payload, include_taken=include_taken)


class ParallelMatcher:
    """Multi-process match fan-out over a sharded database (fork-only).

    Worker processes are forked *after* the shards are built, inheriting
    them copy-on-write — no serialisation of the database, and per-shard
    matching runs on real cores instead of timeslicing one GIL.  The
    price is point-in-time semantics: workers see the database **as of
    fork time**; parent-side mutations after construction are invisible
    to them.  Use it as a read-only analytical surface (bulk candidate
    enumeration, capacity reports), close it, and re-create it after
    bulk mutations.  :meth:`match` resolves the matched names against
    the parent's *current* records.

    Requires the ``fork`` start method (POSIX); raises
    :class:`DatabaseError` where only spawn exists.
    """

    def __init__(self, database: ShardedWhitePagesDatabase, *,
                 processes: Optional[int] = None):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise DatabaseError(
                "ParallelMatcher needs the fork start method; this "
                "platform only offers "
                f"{multiprocessing.get_all_start_methods()}")
        self._database = database
        shards = database.shards
        self._token = next(_FORK_TOKENS)
        _FORK_REGISTRY[self._token] = shards
        n = processes or min(len(shards), os.cpu_count() or 1)
        self.processes = max(1, n)
        ctx = multiprocessing.get_context("fork")
        # Fork happens here: the registry entry (and through it the
        # shards) is captured in every worker's address space.  The
        # exclusive hold guarantees no shard lock is mid-held by a
        # concurrent writer at fork time — a lock forked in the held
        # state has no owning thread in the child and would deadlock
        # the first match on that shard.
        with database.exclusive():
            self._pool = ctx.Pool(processes=self.processes)
        self._closed = False

    # -- queries --------------------------------------------------------------

    def match_names(self, plan: Any = None, *,
                    include_taken: bool = False) -> List[str]:
        """Matching machine names in global name order (as-of-fork)."""
        self._check_open()
        results = [
            self._pool.apply_async(
                _forked_match_names,
                (self._token, i, plan, include_taken))
            for i in range(len(self._database.shards))
        ]
        return _merge_names([r.get() for r in results])

    def match(self, plan: Any = None, *,
              include_taken: bool = False) -> List[MachineRecord]:
        """Matched names resolved against the parent's current records.

        Names that disappeared from the parent since fork are dropped
        (the same tombstone-tolerance ``match`` itself applies).
        """
        from repro.errors import UnknownMachineError
        out: List[MachineRecord] = []
        for name in self.match_names(plan, include_taken=include_taken):
            try:
                out.append(self._database.get(name))
            except UnknownMachineError:
                continue  # removed from the parent since fork
        return out

    def count(self, plan: Any = None, *, include_taken: bool = False) -> int:
        self._check_open()
        results = [
            self._pool.apply_async(
                _forked_count, (self._token, i, plan, include_taken))
            for i in range(len(self._database.shards))
        ]
        return sum(r.get() for r in results)

    # -- lifecycle ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseError("ParallelMatcher is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
        _FORK_REGISTRY.pop(self._token, None)

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Per-shard snapshot persistence (manifest + one v3 file per shard)
# ---------------------------------------------------------------------------


def _shard_file_name(manifest: Path, index: int) -> str:
    return f"{manifest.stem}.shard{index:02d}{manifest.suffix or '.json'}"


def is_shard_manifest(path: Union[str, Path]) -> bool:
    """Cheap sniff: does ``path`` hold a shard manifest (vs a plain
    snapshot)?  Manifests are small and lead with their format key."""
    try:
        with Path(path).open(encoding="utf-8") as fh:
            head = fh.read(4096)
    except OSError:
        return False
    return _MANIFEST_FORMAT in head


def save_sharded_database(db: WhitePages, path: Union[str, Path], *,
                          include_indexes: bool = True,
                          version: int = 3) -> List[Path]:
    """Snapshot ``db`` as a manifest plus one file per shard.

    Returns every path written (manifest first).  A single-shard (or
    plain) database falls back to the standard whole-file snapshot, so
    ``shards=1`` artifacts stay byte-compatible with
    :func:`~repro.database.persistence.save_database` output.

    The shard files are captured under :meth:`~ShardedWhitePagesDatabase
    .exclusive`, so a concurrent writer cannot split one logical update
    across two shard snapshots.

    ``version=4`` writes each shard through
    :func:`~repro.database.persistence.save_database`, so every shard
    file gains its own binary column sidecar (``<file>.cols``) and
    cold-starts by mmap instead of a column rebuild.  The sidecar paths
    are appended after the shard files in the returned list; the
    manifest itself lists (and checksums) only the JSON shard files —
    sidecars carry their own CRCs and fall back silently.
    """
    from repro.database.persistence import dumps_database, save_database
    path = Path(path)
    if isinstance(db, WhitePagesDatabase) or db.shard_count == 1:
        single = db if isinstance(db, WhitePagesDatabase) else db.shards[0]
        save_database(single, path, include_indexes=include_indexes,
                      version=version)
        if version == 4:
            return [path, path.with_name(path.name + ".cols")]
        return [path]
    files = [_shard_file_name(path, i) for i in range(db.shard_count)]
    written: List[Path] = []
    sidecars: List[Path] = []
    checksums: List[int] = []
    with db.exclusive():
        if version == 4:
            # Shard locks are re-entrant, so each per-shard
            # save_database (which takes its own exclusive hold to
            # capture rows + columns coherently) nests under the
            # cross-shard hold.
            for name, shard in zip(files, db.shards):
                shard_path = path.parent / name
                save_database(shard, shard_path,
                              include_indexes=include_indexes, version=4)
                checksums.append(zlib.crc32(shard_path.read_bytes()))
                written.append(shard_path)
                sidecars.append(shard_path.with_name(shard_path.name
                                                     + ".cols"))
            texts = None
        else:
            texts = [dumps_database(shard, include_indexes=include_indexes,
                                    version=version)
                     for shard in db.shards]
    if texts is not None:
        for name, text in zip(files, texts):
            shard_path = path.parent / name
            shard_path.write_text(text, encoding="utf-8")
            checksums.append(zlib.crc32(text.encode("utf-8")))
            written.append(shard_path)
    manifest = {
        # "format" first: the loader sniffs the file head before
        # committing to a full JSON parse of what may be a 100 MB
        # plain snapshot.
        "format": _MANIFEST_FORMAT,
        "version": _MANIFEST_VERSION,
        "partition": _PARTITION_CRC32,
        "shards": len(files),
        "snapshot_version": version,
        "machines": len(db),
        "files": files,
        "checksums": checksums,
    }
    path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return [path] + written + sidecars


def _load_manifest_shards(manifest: Dict[str, Any], base: Path, *,
                          use_index_snapshot: bool,
                          max_workers: Optional[int],
                          columnar: Optional[bool] = None
                          ) -> List[WhitePagesDatabase]:
    from repro.database.persistence import loads_database
    if manifest.get("version") != _MANIFEST_VERSION:
        raise DatabaseError(
            f"unsupported shard manifest version {manifest.get('version')!r}")
    if manifest.get("partition") != _PARTITION_CRC32:
        raise DatabaseError(
            f"unknown shard partition {manifest.get('partition')!r}")
    files = manifest.get("files")
    if not isinstance(files, list) or not files or \
            len(files) != manifest.get("shards"):
        raise DatabaseError("shard manifest files/shards mismatch")
    checksums = manifest.get("checksums")

    def load_one(i_name: Tuple[int, str]) -> WhitePagesDatabase:
        i, name = i_name
        try:
            text = (base / name).read_text(encoding="utf-8")
        except OSError as exc:
            raise DatabaseError(f"missing shard file {name!r}: {exc}") from exc
        if isinstance(checksums, list) and i < len(checksums) and \
                checksums[i] != zlib.crc32(text.encode("utf-8")):
            raise DatabaseError(f"shard file {name!r} fails its checksum")
        # sidecar_dir lets a v4 shard file mmap-attach its column
        # sidecar instead of rebuilding columns from rows.
        return loads_database(text, use_index_snapshot=use_index_snapshot,
                              columnar=columnar, sidecar_dir=base)

    items = list(enumerate(files))
    workers = min(max_workers or 0, len(items))
    if workers >= 2:
        # Threaded shard loads: file reads and the CRC/zlib portions
        # overlap; the JSON parse itself is still GIL-serial.
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(load_one, items))
    return [load_one(item) for item in items]


def load_sharded_database(path: Union[str, Path], *,
                          shards: Optional[int] = None,
                          use_index_snapshot: bool = True,
                          max_workers: Optional[int] = None,
                          columnar: Optional[bool] = None
                          ) -> ShardedWhitePagesDatabase:
    """Load a shard manifest *or* any plain snapshot into a sharded DB.

    - Manifest + matching (or unspecified) ``shards``: each shard file
      loads independently — including its own v3 index-catalog restore —
      and is adopted as-is after routing validation.
    - Manifest + different ``shards``: records are gathered and
      re-partitioned; per-shard catalogs rebuild from records.
    - Plain v1/v2/v3 snapshot: loaded through the normal single-file
      path, then coerced.  ``shards=1`` (or None) keeps the restored
      catalog; a larger count re-partitions and rebuilds.

    ``columnar`` follows the persistence tri-state: ``None`` enables
    the column kernel for v4 shard files (mmap-attaching their
    sidecars), ``True``/``False`` force it on or off.  Re-partitioning
    rebuilds columns from records, preserving whatever the loaded
    shards ran.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    manifest: Optional[Dict[str, Any]] = None
    if _MANIFEST_FORMAT in text[:4096]:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatabaseError(f"invalid shard manifest JSON: {exc}") from exc
        if isinstance(payload, dict) and \
                payload.get("format") == _MANIFEST_FORMAT:
            manifest = payload
    if manifest is not None:
        shard_dbs = _load_manifest_shards(
            manifest, path.parent, use_index_snapshot=use_index_snapshot,
            max_workers=max_workers, columnar=columnar)
        if shards is None or shards == len(shard_dbs):
            return ShardedWhitePagesDatabase.from_shard_databases(
                shard_dbs, max_workers=max_workers)
        want = columnar if columnar is not None \
            else all(db.columnar for db in shard_dbs)
        records = [rec for db in shard_dbs
                   for rec in (db.get(name) for name in db.names())]
        return ShardedWhitePagesDatabase(records, shards=shards,
                                         max_workers=max_workers,
                                         columnar=want)
    from repro.database.persistence import loads_database
    single = loads_database(text, use_index_snapshot=use_index_snapshot,
                            columnar=columnar, sidecar_dir=path.parent)
    if shards is None or shards == 1:
        # N=1 coercion: adopt the loaded database (restored catalog and
        # all) as the only shard.
        return ShardedWhitePagesDatabase.from_shard_databases(
            [single], max_workers=max_workers)
    want = columnar if columnar is not None else single.columnar
    records = [single.get(name) for name in single.names()]
    return ShardedWhitePagesDatabase(records, shards=shards,
                                     max_workers=max_workers,
                                     columnar=want)
