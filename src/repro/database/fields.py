"""Field definitions of the white-pages machine record (paper Figure 3).

The paper enumerates 20 fields; :data:`FIELD_NAMES` preserves that numbering
(1-indexed, as printed) so documentation and tests can refer to "fields
2–7" exactly as the paper does ("The primary function of the resource
monitoring system is to update fields 2 - 7").
"""

from __future__ import annotations

import enum
from typing import Mapping

__all__ = ["MachineState", "FIELD_NAMES", "DYNAMIC_FIELDS", "STATIC_FIELDS"]


class MachineState(enum.Enum):
    """Field 1 — resource state: "up, down, or blocked"."""

    UP = "up"
    DOWN = "down"
    BLOCKED = "blocked"

    def __str__(self) -> str:
        return self.value


#: Figure 3's field list, keyed by the paper's 1-based position.
FIELD_NAMES: Mapping[int, str] = {
    1: "state",                       # resource state
    2: "current_load",                # current load
    3: "active_jobs",                 # active jobs
    4: "available_memory_mb",         # available memory
    5: "available_swap_mb",           # available swap
    6: "last_update_time",            # time of last update
    7: "service_status_flags",        # PUNCH service status flags
    8: "effective_speed",             # effective speed (SPEC-like units)
    9: "num_cpus",                    # number of CPUs
    10: "max_allowed_load",           # maximum allowed load
    11: "machine_name",               # machine name
    12: "machine_object_pointer",     # access and audit information path
    13: "shared_account",             # shared account identifier
    14: "execution_unit_port",        # execution unit TCP port
    15: "pvfs_mount_manager_port",    # PVFS mount manager TCP port
    16: "user_groups",                # list of allowed user groups
    17: "tool_groups",                # types of tools supported
    18: "shadow_account_pool",        # shadow account pool pointer
    19: "usage_policy",               # usage policy pointer
    20: "admin_parameters",           # administrator defined parameter list
}

#: Fields refreshed by the resource monitoring system (paper: fields 2-7).
DYNAMIC_FIELDS = tuple(FIELD_NAMES[i] for i in range(2, 8))

#: Fields holding "relatively static information ... currently updated
#: manually" (paper: fields 8-11).
STATIC_FIELDS = tuple(FIELD_NAMES[i] for i in range(8, 12))
