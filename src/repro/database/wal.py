"""Per-shard write-ahead op log: lossless recovery between checkpoints.

The shard service's checkpoint/restart loop (PR 5) recovers a crashed
worker from its last snapshot — and silently drops every mutation since.
This module closes that window: every mutating verb a
:class:`~repro.runtime.shard_worker.ShardWorker` applies is also
appended to an append-only log, so restart becomes *snapshot load + log
tail replay* and recovery is crash-exact.

File layout
-----------
An 8-byte magic (``RWPWAL1\\0``) followed by records::

    +----------------+----------------+------------------------------+
    | length  (>I)   | crc32   (>I)   | payload (length bytes)       |
    +----------------+----------------+------------------------------+

The payload is the compact JSON of ``[lsn, frame]`` — ``frame`` is the
verb's wire request verbatim (rows already travel as the v3 positional
row codec of :mod:`repro.database.persistence`, so the log reuses that
encoding for free), and ``lsn`` is a strictly-increasing log sequence
number.  Replay is coupled to checkpoints through the LSN **watermark**:
a snapshot written by a WAL-enabled worker embeds the LSN of the last
op it includes (``wal_lsn`` in the snapshot JSON — atomic with the
snapshot because both land in one ``os.replace``), and recovery replays
only records with a higher LSN.  A crash between the snapshot rename
and the log truncation therefore leaves stale records that replay as
watermark-skipped no-ops, never double-applies.

Failure handling is **fail-closed**: recovery stops at the first torn
record (short header, short payload, CRC mismatch, undecodable JSON, or
a non-monotonic LSN) and discards it *and everything after it* — a
half-written op is indistinguishable from garbage, and no half-applied
op may ever become visible.  The recovered good prefix's byte length is
returned so the worker truncates the file there before appending again.

Durability modes
----------------
``fsync``
    :meth:`WriteAheadLog.sync` (an ``fdatasync``) is awaited before the
    worker acknowledges the op.  Survives process *and* machine crash.
    The worker group-commits: concurrent ops that land in the same
    event-loop batch (or the same ``group_commit_interval`` window)
    share one sync.
``async``
    Records are written to the OS (page cache) before the reply, synced
    on a best-effort cadence.  Survives process crash (``SIGKILL``,
    OOM) — the bytes are the kernel's — but not power loss.
``off``
    No log: PR 5's lossy last-checkpoint contract, unchanged.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError, DatabaseError

__all__ = [
    "WAL_MAGIC",
    "WAL_MODES",
    "WriteAheadLog",
    "WalRecoveryResult",
    "WalTail",
    "recover_wal",
    "read_wal_tail",
]

WAL_MAGIC = b"RWPWAL1\x00"
WAL_MODES = ("off", "async", "fsync")

_HEADER = struct.Struct(">II")  # payload length, payload crc32

#: Sanity cap on one record's announced payload (a corrupt length field
#: must not trigger a giant allocation during recovery).
_MAX_RECORD_BYTES = 1 << 26


class WalRecoveryResult:
    """What :func:`recover_wal` salvaged from a log file.

    ``entries`` is the good prefix as ``(lsn, frame)`` pairs in append
    order; ``good_bytes`` is its byte length (truncate the file here
    before appending); ``discarded_bytes`` counts the torn tail, and
    ``reason`` says why scanning stopped (``"end"`` for a clean file).
    """

    def __init__(self, entries: List[Tuple[int, Dict[str, Any]]],
                 good_bytes: int, discarded_bytes: int, reason: str):
        self.entries = entries
        self.good_bytes = good_bytes
        self.discarded_bytes = discarded_bytes
        self.reason = reason

    @property
    def last_lsn(self) -> int:
        return self.entries[-1][0] if self.entries else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WalRecoveryResult(entries={len(self.entries)}, "
                f"good_bytes={self.good_bytes}, "
                f"discarded={self.discarded_bytes}, reason={self.reason!r})")


def recover_wal(path: Union[str, Path]) -> WalRecoveryResult:
    """Scan a WAL file, returning its longest valid prefix.

    Fail-closed by construction: the first record that fails any guard
    ends the scan, and everything from that offset on is reported as
    discarded.  A missing file is an empty log; a file whose *magic* is
    wrong is treated as wholly torn (zero entries, everything
    discarded) — replaying bytes of unknown provenance is worse than
    falling back to the snapshot.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalRecoveryResult([], 0, 0, "missing")
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        return WalRecoveryResult([], 0, len(data), "bad-magic")
    entries: List[Tuple[int, Dict[str, Any]]] = []
    offset = len(WAL_MAGIC)
    last_lsn = 0
    reason = "end"
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            reason = "torn-header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            reason = "bad-length"
            break
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > len(data):
            reason = "torn-payload"
            break
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            reason = "crc-mismatch"
            break
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            reason = "bad-json"
            break
        if (not isinstance(decoded, list) or len(decoded) != 2
                or not isinstance(decoded[0], int)
                or not isinstance(decoded[1], dict)):
            reason = "bad-record"
            break
        lsn, frame = decoded
        if lsn <= last_lsn:
            reason = "non-monotonic-lsn"
            break
        entries.append((lsn, frame))
        last_lsn = lsn
        offset = body_end
    return WalRecoveryResult(entries, offset, len(data) - offset, reason)


class WalTail:
    """One bounded slice of a live WAL, as read by :func:`read_wal_tail`.

    ``entries`` holds the ``(lsn, frame)`` pairs with LSN strictly
    greater than the requested ``after_lsn``, in append order.
    ``next_offset`` is the byte offset just past the last *decoded*
    record (pass it back as ``from_offset`` to resume the scan without
    re-reading the prefix).  ``reason`` mirrors the
    :func:`recover_wal` stop reasons, plus ``"bounded"`` when
    ``max_records`` capped the slice; ``complete`` is true only when
    the scan reached a clean end of file — a torn tail at the streamed
    boundary usually means a concurrent append raced the read and the
    caller should simply retry from ``next_offset``.
    """

    def __init__(self, entries: List[Tuple[int, Dict[str, Any]]],
                 next_offset: int, reason: str):
        self.entries = entries
        self.next_offset = next_offset
        self.reason = reason

    @property
    def complete(self) -> bool:
        return self.reason == "end"

    @property
    def last_lsn(self) -> int:
        return self.entries[-1][0] if self.entries else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WalTail(entries={len(self.entries)}, "
                f"next_offset={self.next_offset}, reason={self.reason!r})")


def read_wal_tail(path: Union[str, Path], *, after_lsn: int = 0,
                  from_offset: Optional[int] = None,
                  max_records: Optional[int] = None) -> WalTail:
    """Read a bounded slice of a WAL that may be growing concurrently.

    This is the live-migration read path: a :class:`ShardMigrator`
    streams the source shard's log tail in batches while the source
    keeps appending.  Unlike :func:`recover_wal` it never judges the
    file — a torn record at the end of the scan is reported (``reason``)
    but is expected, because the writer's ``os.write`` may be mid-flight
    when we read.  The caller polls again; only the *writer* decides
    what is torn at recovery time.

    Args:
        path: WAL file to read.  A missing file yields an empty,
            complete tail (``reason="missing"`` — the shard never
            logged, e.g. right after a checkpoint truncation).
        after_lsn: only entries with ``lsn > after_lsn`` are returned
            (the snapshot watermark, or the last LSN already replayed).
        from_offset: byte offset to resume scanning from (a previous
            slice's ``next_offset``).  Must point at a record boundary;
            offsets past the current end of file mean the log was
            truncated by a checkpoint underneath us, and the scan
            restarts from the head (the LSN filter keeps replay exact —
            LSNs never reset).
        max_records: cap on returned entries (``reason="bounded"`` when
            hit); ``None`` reads to the end of file.

    Returns:
        A :class:`WalTail`.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalTail([], len(WAL_MAGIC), "missing")
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        return WalTail([], len(WAL_MAGIC), "bad-magic")
    offset = len(WAL_MAGIC)
    if from_offset is not None and len(WAL_MAGIC) <= from_offset <= len(data):
        offset = from_offset
    entries: List[Tuple[int, Dict[str, Any]]] = []
    last_lsn = 0
    reason = "end"
    while offset < len(data):
        if max_records is not None and len(entries) >= max_records:
            reason = "bounded"
            break
        if offset + _HEADER.size > len(data):
            reason = "torn-header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            reason = "bad-length"
            break
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > len(data):
            reason = "torn-payload"
            break
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            reason = "crc-mismatch"
            break
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            reason = "bad-json"
            break
        if (not isinstance(decoded, list) or len(decoded) != 2
                or not isinstance(decoded[0], int)
                or not isinstance(decoded[1], dict)):
            reason = "bad-record"
            break
        lsn, frame = decoded
        if last_lsn and lsn <= last_lsn:
            reason = "non-monotonic-lsn"
            break
        if lsn > after_lsn:
            entries.append((lsn, frame))
        last_lsn = lsn
        offset = body_end
    return WalTail(entries, offset, reason)


class WriteAheadLog:
    """An open, append-only shard op log.

    Use :meth:`open` to recover-then-open (the worker restart path);
    the constructor alone assumes the file is already a valid prefix.
    All appends go through one unbuffered file descriptor opened
    ``O_APPEND`` — each record is a single ``os.write``, so concurrent
    appenders (there are none today; the worker dispatch loop is
    single-threaded) could not interleave bytes anyway.
    """

    def __init__(self, path: Union[str, Path], *, mode: str = "fsync",
                 group_commit_interval: float = 0.0,
                 start_lsn: int = 0):
        if mode not in ("async", "fsync"):
            raise ConfigError(
                f"wal mode must be 'async' or 'fsync', got {mode!r} "
                "(mode 'off' means: no WriteAheadLog at all)")
        if group_commit_interval < 0:
            raise ConfigError("group_commit_interval must be >= 0")
        self.path = Path(path)
        self.mode = mode
        self.group_commit_interval = float(group_commit_interval)
        self.last_lsn = int(start_lsn)
        self.synced_lsn = int(start_lsn)
        self.appended = 0
        self.syncs = 0
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        if os.fstat(self._fd).st_size == 0:
            os.write(self._fd, WAL_MAGIC)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path], *, mode: str = "fsync",
             group_commit_interval: float = 0.0
             ) -> Tuple["WriteAheadLog", WalRecoveryResult]:
        """Recover ``path`` (discarding any torn tail on disk) and open
        it for appending; returns the log and what was salvaged."""
        recovery = recover_wal(path)
        path = Path(path)
        if path.exists():
            size = path.stat().st_size
            if recovery.good_bytes < size:
                # Physically drop the torn tail so the next append
                # cannot glue new bytes onto half a record.
                with open(path, "rb+") as fh:
                    fh.truncate(max(recovery.good_bytes, 0))
                    fh.flush()
                    os.fsync(fh.fileno())
        wal = cls(path, mode=mode,
                  group_commit_interval=group_commit_interval,
                  start_lsn=recovery.last_lsn)
        return wal, recovery

    def close(self) -> None:
        """Flush and close — the graceful-shutdown path.  Safe to call
        twice; after close every append raises."""
        if self._fd is None:
            return
        try:
            self.sync()
        finally:
            os.close(self._fd)
            self._fd = None

    @property
    def closed(self) -> bool:
        return self._fd is None

    # -- the write path -----------------------------------------------------

    def append(self, frame: Dict[str, Any]) -> int:
        """Serialise and append one op record; returns its LSN.

        The record reaches the OS before this returns (unbuffered
        write); it reaches the *platters* only after :meth:`sync`.
        Instrumented with the ``wal.*`` crash points (no-ops unless a
        fault injector is armed).
        """
        # Local import: the fault harness lives in the runtime package,
        # and importing it at module scope would cycle back through
        # repro.runtime.__init__ → shard_worker → this module.
        from repro.runtime import faults
        if self._fd is None:
            raise DatabaseError(f"wal {self.path} is closed")
        lsn = self.last_lsn + 1
        payload = json.dumps([lsn, frame],
                             separators=(",", ":")).encode("utf-8")
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        faults.crash_point("wal.before_append")
        if faults.should_fire("wal.mid_append"):  # pragma: no cover - fatal
            # The torn-tail scenario: half a record reaches the disk,
            # then the process dies.  Recovery must discard it.
            os.write(self._fd, record[:max(1, len(record) // 2)])
            faults.die()
        try:
            os.write(self._fd, record)
        except OSError as exc:
            raise DatabaseError(
                f"wal append to {self.path} failed: {exc}") from exc
        self.last_lsn = lsn
        self.appended += 1
        faults.crash_point("wal.after_append")
        return lsn

    @property
    def needs_sync(self) -> bool:
        return self.synced_lsn < self.last_lsn

    def sync(self) -> None:
        """Make every appended record durable (``fdatasync``)."""
        if self._fd is None or not self.needs_sync:
            return
        target = self.last_lsn
        try:
            if hasattr(os, "fdatasync"):
                os.fdatasync(self._fd)
            else:  # pragma: no cover - non-POSIX
                os.fsync(self._fd)
        except OSError as exc:
            raise DatabaseError(
                f"wal sync of {self.path} failed: {exc}") from exc
        self.synced_lsn = target
        self.syncs += 1

    def truncate(self) -> None:
        """Drop every record (checkpoint took over); LSNs keep counting.

        The snapshot that just landed embeds ``last_lsn`` as its
        watermark, so even if this truncation never happens (crash in
        the window) the stale records are skipped on replay.
        """
        if self._fd is None:
            raise DatabaseError(f"wal {self.path} is closed")
        os.ftruncate(self._fd, len(WAL_MAGIC))
        try:
            if hasattr(os, "fdatasync"):
                os.fdatasync(self._fd)
            else:  # pragma: no cover - non-POSIX
                os.fsync(self._fd)
        except OSError as exc:
            raise DatabaseError(
                f"wal truncate of {self.path} failed: {exc}") from exc
        self.synced_lsn = self.last_lsn
        self.syncs += 1

    # -- observability ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        size = 0
        if self._fd is not None:
            try:
                size = os.fstat(self._fd).st_size
            except OSError:  # pragma: no cover - defensive
                size = 0
        return {
            "mode": self.mode,
            "path": str(self.path),
            "last_lsn": self.last_lsn,
            "synced_lsn": self.synced_lsn,
            "appended": self.appended,
            "syncs": self.syncs,
            "bytes": size,
            "group_commit_interval": self.group_commit_interval,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WriteAheadLog({str(self.path)!r}, mode={self.mode!r}, "
                f"lsn={self.last_lsn})")
