"""The per-machine record of the white-pages database (paper Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from repro.database.fields import MachineState
from repro.errors import ConfigError

__all__ = ["MachineRecord", "ServiceStatusFlags", "RECORD_ROW_FIELDS"]

#: Positional layout of :meth:`MachineRecord.to_row` /
#: :meth:`MachineRecord.from_row` (persistence format v3).  The service
#: status flags are packed into one bit mask (bit 0 = execution unit,
#: bit 1 = PVFS manager, bit 2 = proxy server).  Any change to this
#: tuple is a row-schema change: bump the version embedded in v3
#: snapshots (see :mod:`repro.database.persistence`).
RECORD_ROW_FIELDS = (
    "machine_name", "state", "current_load", "active_jobs",
    "available_memory_mb", "available_swap_mb", "last_update_time",
    "service_flag_bits", "effective_speed", "num_cpus",
    "max_allowed_load", "machine_object_pointer", "shared_account",
    "execution_unit_port", "pvfs_mount_manager_port", "user_groups",
    "tool_groups", "shadow_account_pool", "usage_policy",
    "admin_parameters",
)


@dataclass(frozen=True)
class ServiceStatusFlags:
    """Field 7 — PUNCH service status flags.

    Tracks whether the per-machine daemons ActYP depends on are live; the
    paper's ActYP "verifies that relevant services are available and starts
    daemons as necessary" (Section 2).
    """

    execution_unit_up: bool = True
    pvfs_manager_up: bool = True
    proxy_server_up: bool = True

    @property
    def all_up(self) -> bool:
        return (self.execution_unit_up and self.pvfs_manager_up
                and self.proxy_server_up)


@dataclass(frozen=True)
class MachineRecord:
    """One machine's white-pages entry; field numbers follow Figure 3.

    The record is immutable — the database applies updates by replacing
    records — so resource pools can safely cache references.

    Only ``machine_name`` is required; defaults describe a healthy,
    unloaded, unrestricted machine so tests and examples can build fleets
    tersely.
    """

    # field 11 (the primary key; listed first for construction convenience)
    machine_name: str
    # field 1
    state: MachineState = MachineState.UP
    # fields 2-6 (dynamic; refreshed by monitoring)
    current_load: float = 0.0
    active_jobs: int = 0
    available_memory_mb: float = 512.0
    available_swap_mb: float = 1024.0
    last_update_time: float = 0.0
    # field 7
    service_status_flags: ServiceStatusFlags = field(default_factory=ServiceStatusFlags)
    # fields 8-10 (static)
    effective_speed: float = 300.0
    num_cpus: int = 1
    max_allowed_load: float = 4.0
    # field 12 — path to access/audit info (ssh key, owner, start script)
    machine_object_pointer: str = ""
    # field 13 — shared account ("nobody"-style) if any
    shared_account: Optional[str] = None
    # field 14 — execution unit TCP port (in the shared account, if it exists)
    execution_unit_port: int = 7070
    # field 15 — PVFS mount manager TCP port
    pvfs_mount_manager_port: int = 7071
    # field 16 — allowed user groups
    user_groups: FrozenSet[str] = frozenset({"public"})
    # field 17 — tool groups the machine can run
    tool_groups: FrozenSet[str] = frozenset({"general"})
    # field 18 — name of the machine's shadow-account pool
    shadow_account_pool: str = ""
    # field 19 — usage policy pointer (name of a registered metaprogram)
    usage_policy: Optional[str] = None
    # field 20 — administrator-defined key-value parameters (arch, memory,
    # ostype, osversion, owner, swap, cms, ...)
    admin_parameters: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.machine_name:
            raise ConfigError("machine_name must be non-empty")
        if self.num_cpus < 1:
            raise ConfigError(f"num_cpus must be >= 1, got {self.num_cpus}")
        if self.effective_speed <= 0:
            raise ConfigError("effective_speed must be > 0")
        if self.max_allowed_load <= 0:
            raise ConfigError("max_allowed_load must be > 0")
        if self.current_load < 0 or self.active_jobs < 0:
            raise ConfigError("load and job counts must be >= 0")
        # Freeze the mapping so records are safely hashable by name.
        object.__setattr__(self, "admin_parameters", dict(self.admin_parameters))

    # -- convenience -------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state is MachineState.UP

    @property
    def is_overloaded(self) -> bool:
        """Above the administrator's maximum allowed load (field 10)."""
        return self.current_load >= self.max_allowed_load

    def parameter(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Look up an admin-defined parameter (field 20), e.g. ``arch``."""
        return self.admin_parameters.get(key, default)

    def attribute_view(self) -> Dict[str, Any]:
        """Flatten the record for query matching.

        Admin parameters (field 20) are merged over the built-in fields —
        they are "used by the active yellow pages service at run-time", and
        the query language's ``rsrc`` keys (arch, memory, ...) resolve
        against exactly this view.
        """
        view: Dict[str, Any] = {
            "name": self.machine_name,
            "state": str(self.state),
            "load": self.current_load,
            "jobs": self.active_jobs,
            "freememory": self.available_memory_mb,
            "freeswap": self.available_swap_mb,
            "speed": self.effective_speed,
            "cpus": self.num_cpus,
            "maxload": self.max_allowed_load,
        }
        for key, value in self.admin_parameters.items():
            view[key] = value
        return view

    # -- compact row codec (persistence format v3) -------------------------------

    def to_row(self) -> List[Any]:
        """Positional encoding following :data:`RECORD_ROW_FIELDS`.

        Field values are coerced to their canonical types on the way
        *out* so :meth:`from_row` — the cold-start hot loop — can trust
        the parsed JSON types without per-field conversion.
        """
        flags = self.service_status_flags
        return [
            self.machine_name,
            self.state.value,
            float(self.current_load),
            int(self.active_jobs),
            float(self.available_memory_mb),
            float(self.available_swap_mb),
            float(self.last_update_time),
            (1 if flags.execution_unit_up else 0)
            | (2 if flags.pvfs_manager_up else 0)
            | (4 if flags.proxy_server_up else 0),
            float(self.effective_speed),
            int(self.num_cpus),
            float(self.max_allowed_load),
            self.machine_object_pointer,
            self.shared_account,
            int(self.execution_unit_port),
            int(self.pvfs_mount_manager_port),
            sorted(self.user_groups),
            sorted(self.tool_groups),
            self.shadow_account_pool,
            self.usage_policy,
            dict(self.admin_parameters),
        ]

    @classmethod
    def from_row(cls, row: List[Any]) -> "MachineRecord":
        """Fast loader for :meth:`to_row` output.

        This is the per-record inner loop of a v3 cold start, so it
        deliberately bypasses the dataclass constructor's per-field
        dict dispatch *and* ``__post_init__`` validation: the row came
        from a snapshot this code wrote (types canonicalised by
        ``to_row``, values validated when the record was first built,
        section guarded by the snapshot checksum).  The row's group
        lists and admin-parameter dict are **consumed** — the caller
        must not reuse the row afterwards.  A malformed row surfaces as
        ``ValueError``/``KeyError``/``TypeError`` for the persistence
        layer to wrap.
        """
        (machine_name, state, current_load, active_jobs,
         available_memory_mb, available_swap_mb, last_update_time,
         flag_bits, effective_speed, num_cpus, max_allowed_load,
         machine_object_pointer, shared_account, execution_unit_port,
         pvfs_mount_manager_port, user_groups, tool_groups,
         shadow_account_pool, usage_policy, admin_parameters) = row
        # The same domain guards __post_init__ enforces, applied inline:
        # a hand-edited row must fail at load, like the v2 parser, not
        # divide by zero in a rank key later.
        if not machine_name:
            raise ValueError("machine_name must be non-empty")
        if num_cpus < 1:
            raise ValueError(f"num_cpus must be >= 1, got {num_cpus}")
        if effective_speed <= 0:
            raise ValueError("effective_speed must be > 0")
        if max_allowed_load <= 0:
            raise ValueError("max_allowed_load must be > 0")
        if current_load < 0 or active_jobs < 0:
            raise ValueError("load and job counts must be >= 0")
        if not 0 <= flag_bits <= 7:
            # Explicit: Python's negative indexing would otherwise map
            # -1 to a valid (and wrong) flag combination silently.
            raise ValueError(f"service flag bits out of range: {flag_bits}")
        rec = object.__new__(cls)
        # Wholesale __dict__ replacement via object.__setattr__ skips
        # the frozen-dataclass __setattr__ machinery (which would raise)
        # and its per-field function-call overhead.
        object.__setattr__(rec, "__dict__", {
            "machine_name": machine_name,
            "state": _STATE_BY_VALUE[state],
            "current_load": current_load,
            "active_jobs": active_jobs,
            "available_memory_mb": available_memory_mb,
            "available_swap_mb": available_swap_mb,
            "last_update_time": last_update_time,
            "service_status_flags": _FLAGS_BY_BITS[flag_bits],
            "effective_speed": effective_speed,
            "num_cpus": num_cpus,
            "max_allowed_load": max_allowed_load,
            "machine_object_pointer": machine_object_pointer,
            "shared_account": shared_account,
            "execution_unit_port": execution_unit_port,
            "pvfs_mount_manager_port": pvfs_mount_manager_port,
            "user_groups": frozenset(user_groups),
            "tool_groups": frozenset(tool_groups),
            "shadow_account_pool": shadow_account_pool,
            "usage_policy": usage_policy,
            "admin_parameters": admin_parameters,
        })
        return rec

    def with_dynamic(
        self,
        *,
        current_load: Optional[float] = None,
        active_jobs: Optional[int] = None,
        available_memory_mb: Optional[float] = None,
        available_swap_mb: Optional[float] = None,
        last_update_time: Optional[float] = None,
        service_status_flags: Optional[ServiceStatusFlags] = None,
        state: Optional[MachineState] = None,
    ) -> "MachineRecord":
        """Copy with monitoring-owned fields (1–7) replaced.

        This is the white-pages write-path hot loop (every monitoring
        refresh and every allocation's load bump), so the copy swaps the
        instance ``__dict__`` directly instead of going through the
        dataclass constructor — ``__post_init__``'s checks on the
        *static* fields cannot fail on a copy, and the two dynamic
        validations it would re-run are applied here explicitly.  The
        admin-parameter mapping is shared, not copied: it was privatised
        when this record was first built and is never mutated.
        """
        updates: Dict[str, Any] = {}
        if current_load is not None:
            if current_load < 0:
                raise ConfigError("load and job counts must be >= 0")
            updates["current_load"] = current_load
        if active_jobs is not None:
            if active_jobs < 0:
                raise ConfigError("load and job counts must be >= 0")
            updates["active_jobs"] = active_jobs
        if available_memory_mb is not None:
            updates["available_memory_mb"] = available_memory_mb
        if available_swap_mb is not None:
            updates["available_swap_mb"] = available_swap_mb
        if last_update_time is not None:
            updates["last_update_time"] = last_update_time
        if service_status_flags is not None:
            updates["service_status_flags"] = service_status_flags
        if state is not None:
            updates["state"] = state
        rec = object.__new__(MachineRecord)
        new_dict = dict(self.__dict__)
        new_dict.update(updates)
        object.__setattr__(rec, "__dict__", new_dict)
        return rec


#: Interned lookup tables for the row fast path: enum resolution and the
#: eight possible flag combinations, built once at import.
_STATE_BY_VALUE: Dict[str, MachineState] = {s.value: s for s in MachineState}
_FLAGS_BY_BITS = tuple(
    ServiceStatusFlags(
        execution_unit_up=bool(bits & 1),
        pvfs_manager_up=bool(bits & 2),
        proxy_server_up=bool(bits & 4),
    )
    for bits in range(8)
)
