"""The per-machine record of the white-pages database (paper Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.database.fields import MachineState
from repro.errors import ConfigError

__all__ = ["MachineRecord", "ServiceStatusFlags"]


@dataclass(frozen=True)
class ServiceStatusFlags:
    """Field 7 — PUNCH service status flags.

    Tracks whether the per-machine daemons ActYP depends on are live; the
    paper's ActYP "verifies that relevant services are available and starts
    daemons as necessary" (Section 2).
    """

    execution_unit_up: bool = True
    pvfs_manager_up: bool = True
    proxy_server_up: bool = True

    @property
    def all_up(self) -> bool:
        return (self.execution_unit_up and self.pvfs_manager_up
                and self.proxy_server_up)


@dataclass(frozen=True)
class MachineRecord:
    """One machine's white-pages entry; field numbers follow Figure 3.

    The record is immutable — the database applies updates by replacing
    records — so resource pools can safely cache references.

    Only ``machine_name`` is required; defaults describe a healthy,
    unloaded, unrestricted machine so tests and examples can build fleets
    tersely.
    """

    # field 11 (the primary key; listed first for construction convenience)
    machine_name: str
    # field 1
    state: MachineState = MachineState.UP
    # fields 2-6 (dynamic; refreshed by monitoring)
    current_load: float = 0.0
    active_jobs: int = 0
    available_memory_mb: float = 512.0
    available_swap_mb: float = 1024.0
    last_update_time: float = 0.0
    # field 7
    service_status_flags: ServiceStatusFlags = field(default_factory=ServiceStatusFlags)
    # fields 8-10 (static)
    effective_speed: float = 300.0
    num_cpus: int = 1
    max_allowed_load: float = 4.0
    # field 12 — path to access/audit info (ssh key, owner, start script)
    machine_object_pointer: str = ""
    # field 13 — shared account ("nobody"-style) if any
    shared_account: Optional[str] = None
    # field 14 — execution unit TCP port (in the shared account, if it exists)
    execution_unit_port: int = 7070
    # field 15 — PVFS mount manager TCP port
    pvfs_mount_manager_port: int = 7071
    # field 16 — allowed user groups
    user_groups: FrozenSet[str] = frozenset({"public"})
    # field 17 — tool groups the machine can run
    tool_groups: FrozenSet[str] = frozenset({"general"})
    # field 18 — name of the machine's shadow-account pool
    shadow_account_pool: str = ""
    # field 19 — usage policy pointer (name of a registered metaprogram)
    usage_policy: Optional[str] = None
    # field 20 — administrator-defined key-value parameters (arch, memory,
    # ostype, osversion, owner, swap, cms, ...)
    admin_parameters: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.machine_name:
            raise ConfigError("machine_name must be non-empty")
        if self.num_cpus < 1:
            raise ConfigError(f"num_cpus must be >= 1, got {self.num_cpus}")
        if self.effective_speed <= 0:
            raise ConfigError("effective_speed must be > 0")
        if self.max_allowed_load <= 0:
            raise ConfigError("max_allowed_load must be > 0")
        if self.current_load < 0 or self.active_jobs < 0:
            raise ConfigError("load and job counts must be >= 0")
        # Freeze the mapping so records are safely hashable by name.
        object.__setattr__(self, "admin_parameters", dict(self.admin_parameters))

    # -- convenience -------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state is MachineState.UP

    @property
    def is_overloaded(self) -> bool:
        """Above the administrator's maximum allowed load (field 10)."""
        return self.current_load >= self.max_allowed_load

    def parameter(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Look up an admin-defined parameter (field 20), e.g. ``arch``."""
        return self.admin_parameters.get(key, default)

    def attribute_view(self) -> Dict[str, Any]:
        """Flatten the record for query matching.

        Admin parameters (field 20) are merged over the built-in fields —
        they are "used by the active yellow pages service at run-time", and
        the query language's ``rsrc`` keys (arch, memory, ...) resolve
        against exactly this view.
        """
        view: Dict[str, Any] = {
            "name": self.machine_name,
            "state": str(self.state),
            "load": self.current_load,
            "jobs": self.active_jobs,
            "freememory": self.available_memory_mb,
            "freeswap": self.available_swap_mb,
            "speed": self.effective_speed,
            "cpus": self.num_cpus,
            "maxload": self.max_allowed_load,
        }
        for key, value in self.admin_parameters.items():
            view[key] = value
        return view

    def with_dynamic(
        self,
        *,
        current_load: Optional[float] = None,
        active_jobs: Optional[int] = None,
        available_memory_mb: Optional[float] = None,
        available_swap_mb: Optional[float] = None,
        last_update_time: Optional[float] = None,
        service_status_flags: Optional[ServiceStatusFlags] = None,
        state: Optional[MachineState] = None,
    ) -> "MachineRecord":
        """Copy with monitoring-owned fields (1–7) replaced."""
        updates: Dict[str, Any] = {}
        if current_load is not None:
            updates["current_load"] = current_load
        if active_jobs is not None:
            updates["active_jobs"] = active_jobs
        if available_memory_mb is not None:
            updates["available_memory_mb"] = available_memory_mb
        if available_swap_mb is not None:
            updates["available_swap_mb"] = available_swap_mb
        if last_update_time is not None:
            updates["last_update_time"] = last_update_time
        if service_status_flags is not None:
            updates["service_status_flags"] = service_status_flags
        if state is not None:
            updates["state"] = state
        return replace(self, **updates)
