"""Usage-policy metaprograms (field 19 of Figure 3).

The paper designs field 19 to "point to a PUNCH metaprogram that would
allow administrators to specify complex usage policies (e.g., public users
are only allowed to access this machine if its load is below a specified
threshold)" — noted as unimplemented in their prototype.  We implement a
small, safe expression-based policy engine: a policy is a named predicate
over the machine's attribute view and the requesting user's context.

Policies are plain Python callables registered by name (never ``eval`` of
admin strings), plus combinators for the common patterns the paper
sketches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.database.records import MachineRecord
from repro.errors import PolicyError

__all__ = [
    "PolicyContext",
    "PolicyFn",
    "PolicyRegistry",
    "load_below",
    "group_in",
    "always_allow",
    "always_deny",
    "all_of",
    "any_of",
]


@dataclass(frozen=True)
class PolicyContext:
    """The requesting user's context, as carried in the query's user keys."""

    login: str = ""
    access_group: str = "public"
    extra: Mapping[str, Any] = field(default_factory=dict)


PolicyFn = Callable[[MachineRecord, PolicyContext], bool]


def always_allow(record: MachineRecord, ctx: PolicyContext) -> bool:
    return True


def always_deny(record: MachineRecord, ctx: PolicyContext) -> bool:
    return False


def load_below(threshold: float, groups: Optional[frozenset[str]] = None) -> PolicyFn:
    """The paper's example policy: restricted groups only get lightly
    loaded machines.

    If ``groups`` is given, only those groups are subject to the threshold;
    other groups are always allowed.
    """

    def policy(record: MachineRecord, ctx: PolicyContext) -> bool:
        if groups is not None and ctx.access_group not in groups:
            return True
        return record.current_load < threshold

    return policy


def group_in(*allowed: str) -> PolicyFn:
    allowed_set = frozenset(allowed)

    def policy(record: MachineRecord, ctx: PolicyContext) -> bool:
        return ctx.access_group in allowed_set

    return policy


def all_of(*policies: PolicyFn) -> PolicyFn:
    def policy(record: MachineRecord, ctx: PolicyContext) -> bool:
        return all(p(record, ctx) for p in policies)

    return policy


def any_of(*policies: PolicyFn) -> PolicyFn:
    def policy(record: MachineRecord, ctx: PolicyContext) -> bool:
        return any(p(record, ctx) for p in policies)

    return policy


class PolicyRegistry:
    """Named policies that machine records reference through field 19."""

    def __init__(self):
        self._lock = threading.RLock()
        self._policies: Dict[str, PolicyFn] = {}

    def register(self, name: str, policy: PolicyFn) -> None:
        if not name:
            raise PolicyError("policy name must be non-empty")
        with self._lock:
            if name in self._policies:
                raise PolicyError(f"policy {name!r} already registered")
            self._policies[name] = policy

    def get(self, name: str) -> PolicyFn:
        with self._lock:
            policy = self._policies.get(name)
            if policy is None:
                raise PolicyError(f"unknown policy {name!r}")
            return policy

    def evaluate(self, record: MachineRecord, ctx: PolicyContext) -> bool:
        """Evaluate the record's policy (field 19); no policy = allow."""
        if record.usage_policy is None:
            return True
        policy = self.get(record.usage_policy)
        try:
            return bool(policy(record, ctx))
        except Exception as exc:  # fail closed: a broken policy denies
            raise PolicyError(
                f"policy {record.usage_policy!r} raised on "
                f"{record.machine_name}: {exc}"
            ) from exc

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._policies)
