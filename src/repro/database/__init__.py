"""White-pages resource database and directory substrates (Section 4.1).

The paper's ActYP service sits on top of a custom per-machine database —
the "white pages" — whose 20 fields are listed in Figure 3.  Resource
pools walk this database at initialisation time to aggregate machines
matching their constraint, marking them ``taken``; pool managers track pool
instances in a *local directory service*; shadow accounts on each machine
are managed through a secondary database referenced by field 18.

Public API:

- :class:`~repro.database.records.MachineRecord` / ``MachineState`` — the
  Figure 3 schema.
- :class:`~repro.database.whitepages.WhitePagesDatabase` — registry with
  match/take/release operations (and a deprecated linear ``scan`` shim).
- :class:`~repro.database.sharding.ShardedWhitePagesDatabase` — the same
  surface hash-partitioned across N shards, with fanned-out queries,
  per-shard snapshots, and a fork-based
  :class:`~repro.database.sharding.ParallelMatcher`.
- :class:`~repro.database.service.ShardServiceClient` /
  :class:`~repro.database.service.ShardSupervisor` — the persistent
  shard service: the same surface again, but over live out-of-process
  :class:`~repro.runtime.shard_worker.ShardWorker` processes behind
  the wire protocol (import :mod:`repro.database.service` directly;
  kept out of this namespace so the core database layer does not pull
  the runtime at import time).
- :mod:`~repro.database.indexes` — the matchmaking engine's storage half:
  incrementally-maintained hash/sorted attribute indexes the database
  executes compiled query plans against.
- :class:`~repro.database.directory.LocalDirectoryService` — pool-instance
  registry used by pool managers.
- :class:`~repro.database.shadow.ShadowAccountPool` — per-machine shadow
  account allocation.
- :mod:`~repro.database.policy` — usage-policy metaprograms (field 19).
"""

from repro.database.fields import FIELD_NAMES, MachineState
from repro.database.indexes import AttributeIndexCatalog
from repro.database.records import MachineRecord
from repro.database.whitepages import WhitePagesDatabase
from repro.database.sharding import (
    ParallelMatcher,
    ShardedWhitePagesDatabase,
    WhitePages,
    load_sharded_database,
    save_sharded_database,
    shard_of,
)
from repro.database.directory import LocalDirectoryService, PoolInstanceEntry
from repro.database.shadow import ShadowAccount, ShadowAccountPool

__all__ = [
    "FIELD_NAMES",
    "MachineState",
    "MachineRecord",
    "AttributeIndexCatalog",
    "WhitePagesDatabase",
    "ShardedWhitePagesDatabase",
    "ParallelMatcher",
    "WhitePages",
    "shard_of",
    "save_sharded_database",
    "load_sharded_database",
    "LocalDirectoryService",
    "PoolInstanceEntry",
    "ShadowAccount",
    "ShadowAccountPool",
]
