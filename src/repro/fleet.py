"""Synthetic machine-fleet construction.

The paper's controlled experiments run against "a database of 3,200
machines"; production PUNCH mixed Sun and HP workstations with a handful
of big shared-memory servers.  :func:`build_fleet` generates such
databases deterministically: machine records with admin parameters
(``arch``, ``memory``, ``ostype``, ``domain``, licenses, ...) drawn from a
configurable composition, plus an optional explicit ``pool`` striping tag
used by the figure experiments to spread machines uniformly across pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.database.records import MachineRecord
from repro.database.shadow import ShadowAccountRegistry
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import ConfigError

__all__ = ["ArchProfile", "FleetSpec", "build_fleet", "build_database",
           "build_shard_service"]


@dataclass(frozen=True)
class ArchProfile:
    """One architecture's share of the fleet and its hardware envelope."""

    arch: str
    ostype: str
    fraction: float
    memory_choices_mb: Tuple[int, ...] = (128, 256, 512)
    speed_range: Tuple[float, float] = (200.0, 400.0)
    cpus_choices: Tuple[int, ...] = (1,)
    licenses: Tuple[str, ...] = ()


#: Composition loosely matching turn-of-the-century PUNCH: mostly Sun
#: workstations, a large HP population, a few multi-CPU servers.
DEFAULT_PROFILES: Tuple[ArchProfile, ...] = (
    ArchProfile("sun", "solaris", 0.55,
                memory_choices_mb=(128, 256, 512, 1024),
                speed_range=(250.0, 450.0), cpus_choices=(1, 1, 2),
                licenses=("tsuprem4", "spice")),
    ArchProfile("hp", "hpux", 0.30,
                memory_choices_mb=(128, 256, 512),
                speed_range=(200.0, 380.0), cpus_choices=(1,),
                licenses=("spice",)),
    ArchProfile("x86", "linux", 0.15,
                memory_choices_mb=(256, 512, 1024),
                speed_range=(300.0, 500.0), cpus_choices=(1, 2, 4),
                licenses=()),
)


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of a synthetic fleet."""

    size: int = 3200
    domain: str = "purdue"
    profiles: Tuple[ArchProfile, ...] = DEFAULT_PROFILES
    #: Stripe machines across this many experiment pools via the ``pool``
    #: admin parameter ("uniformly distributed across pools").
    stripe_pools: int = 0
    shadow_accounts_per_machine: int = 8
    tool_groups: Tuple[str, ...] = ("general",)
    user_groups: Tuple[str, ...] = ("public", "ece")
    seed: int = 7

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigError("fleet size must be >= 0")
        if self.stripe_pools < 0:
            raise ConfigError("stripe_pools must be >= 0")
        total = sum(p.fraction for p in self.profiles)
        if self.profiles and not 0.999 <= total <= 1.001:
            raise ConfigError(
                f"profile fractions must sum to 1.0, got {total}"
            )


def build_fleet(spec: FleetSpec) -> List[MachineRecord]:
    """Deterministically generate the machine records of a fleet."""
    rng = np.random.default_rng(spec.seed)
    records: List[MachineRecord] = []
    # Assign counts per profile by largest-remainder so they sum exactly.
    raw = [p.fraction * spec.size for p in spec.profiles]
    counts = [int(x) for x in raw]
    remainder = spec.size - sum(counts)
    order = np.argsort([c - r for c, r in zip(counts, raw)])
    for i in range(remainder):
        counts[order[i % len(counts)]] += 1

    serial = 0
    for profile, count in zip(spec.profiles, counts):
        for _ in range(count):
            name = f"{profile.arch}{serial:05d}.{spec.domain}.edu"
            memory = int(rng.choice(profile.memory_choices_mb))
            speed = float(rng.uniform(*profile.speed_range))
            cpus = int(rng.choice(profile.cpus_choices))
            params: Dict[str, str] = {
                "arch": profile.arch,
                "ostype": profile.ostype,
                "osversion": f"{int(rng.integers(5, 9))}.{int(rng.integers(0, 10))}",
                "memory": str(memory),
                "swap": str(memory * 2),
                "owner": spec.domain,
                "domain": spec.domain,
            }
            for license_name in profile.licenses:
                # Half of the machines of a profile carry each license.
                if rng.random() < 0.5:
                    params["license"] = license_name
            if spec.stripe_pools > 0:
                params["pool"] = f"p{serial % spec.stripe_pools:02d}"
            records.append(MachineRecord(
                machine_name=name,
                available_memory_mb=float(memory),
                available_swap_mb=float(memory * 2),
                effective_speed=speed,
                num_cpus=cpus,
                max_allowed_load=float(cpus) * 4.0,
                current_load=float(rng.uniform(0.0, 1.0)),
                user_groups=frozenset(spec.user_groups),
                tool_groups=frozenset(spec.tool_groups),
                shadow_account_pool=f"shadow:{name}",
                admin_parameters=params,
            ))
            serial += 1
    return records


def build_database(
    spec: Optional[FleetSpec] = None,
    *,
    with_shadows: bool = False,
    shards: int = 1,
    shard_workers: Optional[int] = None,
    columnar: bool = False,
):
    """Build a white-pages database (and optionally shadow registry).

    ``shards > 1`` partitions the fleet across a
    :class:`~repro.database.sharding.ShardedWhitePagesDatabase`
    (``shard_workers`` enables its thread fan-out); the default stays a
    plain single-shard :class:`WhitePagesDatabase`.  ``columnar=True``
    builds each shard with the vectorized match kernel.
    """
    spec = spec or FleetSpec()
    records = build_fleet(spec)
    if shards > 1:
        from repro.database.sharding import ShardedWhitePagesDatabase
        db = ShardedWhitePagesDatabase(records, shards=shards,
                                       max_workers=shard_workers,
                                       columnar=columnar)
    else:
        db = WhitePagesDatabase(records, columnar=columnar)
    registry: Optional[ShadowAccountRegistry] = None
    if with_shadows:
        registry = ShadowAccountRegistry()
        for rec in records:
            registry.create_pool(rec.machine_name,
                                 count=spec.shadow_accounts_per_machine)
    return db, registry


def build_shard_service(
    shards: int,
    snapshot_dir,
    *,
    records: Optional[List[MachineRecord]] = None,
    spec: Optional[FleetSpec] = None,
    host: str = "127.0.0.1",
    wal: str = "fsync",
    wal_interval: float = 0.0,
    columnar: Optional[bool] = None,
    slow_op_threshold: float = 0.25,
):
    """A configured (not yet started) shard-worker supervisor.

    The one-stop constructor the CLI and deployments share: seed
    records come from ``records`` verbatim, else from ``spec`` (a
    synthetic fleet), else the supervisor adopts whatever checkpoint or
    seed already lives in ``snapshot_dir`` (the restart-the-world
    path).  ``wal`` defaults to ``"fsync"`` here — a *service* fleet
    should be durable unless the operator opts out — while the library
    :class:`~repro.database.service.ShardSupervisor` default stays
    ``"off"`` for PR 5 compatibility.
    """
    from repro.database.service import ShardSupervisor
    if records is None and spec is not None:
        records = build_fleet(spec)
    return ShardSupervisor(
        shards, host=host, snapshot_dir=snapshot_dir,
        records=records or (), columnar=columnar,
        wal=wal, wal_interval=wal_interval,
        slow_op_threshold=slow_op_threshold)
