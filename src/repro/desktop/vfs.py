"""The PUNCH Virtual File System mount manager (paper reference [7]).

"The virtual file system service mounts the application and data disks on
to the selected machine" before a run, and unmounts them afterward.  Each
machine record's field 15 names the TCP port of its PVFS mount manager;
this module simulates that daemon: it tracks which (machine, volume)
pairs are mounted for which session and enforces the mount/unmount
pairing the desktop relies on.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.errors import ReproError

__all__ = ["MountHandle", "VirtualFileSystem", "VfsError"]


class VfsError(ReproError):
    """Mount bookkeeping violation."""


@dataclass(frozen=True)
class MountHandle:
    """One live mount of a volume onto a machine for a session."""

    mount_id: int
    machine_name: str
    volume: str
    session_key: str
    mounted_at: float


class VirtualFileSystem:
    """Tracks PVFS mounts across the fleet.

    ``volume`` strings name application or data disks, e.g.
    ``apps:tsuprem4`` or ``home:kapadia@storage.hp.com`` — the paper's
    user "provides the location of his/her storage service provider".
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._mounts: Dict[int, MountHandle] = {}
        self._by_machine: Dict[str, Set[int]] = {}
        self.mount_count = 0
        self.unmount_count = 0

    def mount(self, machine_name: str, volume: str, session_key: str,
              now: float = 0.0) -> MountHandle:
        """Mount ``volume`` on ``machine_name`` for the session."""
        with self._lock:
            for mid in self._by_machine.get(machine_name, ()):  # guard dupes
                h = self._mounts[mid]
                if h.volume == volume and h.session_key == session_key:
                    raise VfsError(
                        f"{volume!r} already mounted on {machine_name} "
                        "for this session"
                    )
            handle = MountHandle(
                mount_id=next(self._ids),
                machine_name=machine_name,
                volume=volume,
                session_key=session_key,
                mounted_at=now,
            )
            self._mounts[handle.mount_id] = handle
            self._by_machine.setdefault(machine_name, set()).add(handle.mount_id)
            self.mount_count += 1
            return handle

    def unmount(self, handle: MountHandle) -> None:
        with self._lock:
            if handle.mount_id not in self._mounts:
                raise VfsError(f"mount {handle.mount_id} is not live")
            del self._mounts[handle.mount_id]
            ids = self._by_machine.get(handle.machine_name)
            if ids:
                ids.discard(handle.mount_id)
                if not ids:
                    del self._by_machine[handle.machine_name]
            self.unmount_count += 1

    def unmount_session(self, session_key: str) -> int:
        """Tear down every mount of a session; returns the count."""
        with self._lock:
            stale = [h for h in self._mounts.values()
                     if h.session_key == session_key]
            for h in stale:
                self.unmount(h)
            return len(stale)

    def mounts_on(self, machine_name: str) -> List[MountHandle]:
        with self._lock:
            return [self._mounts[i]
                    for i in sorted(self._by_machine.get(machine_name, ()))]

    @property
    def live_mounts(self) -> int:
        with self._lock:
            return len(self._mounts)
