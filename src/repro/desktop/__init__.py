"""The PUNCH network desktop substrate (Section 2, Figure 1).

The desktop is the user-facing component: it authorises the user for the
selected application, obtains resources through the application-management
component and ActYP, mounts application and data disks via the PUNCH
virtual file system, invokes the run, and tears everything down afterward
— the full event sequence 1–6 of Figure 1.

- :class:`~repro.desktop.vfs.VirtualFileSystem` — PVFS mount-manager
  simulation (paper reference [7]).
- :class:`~repro.desktop.session.RunSession` — the per-run state machine.
- :class:`~repro.desktop.desktop.NetworkDesktop` — the orchestrator.
"""

from repro.desktop.vfs import MountHandle, VirtualFileSystem
from repro.desktop.session import RunSession, SessionState
from repro.desktop.desktop import NetworkDesktop, UserAccount

__all__ = [
    "MountHandle",
    "VirtualFileSystem",
    "RunSession",
    "SessionState",
    "NetworkDesktop",
    "UserAccount",
]
