"""Per-run session state machine.

A run moves through the Figure 1 lifecycle::

    REQUESTED -> SCHEDULED -> MOUNTED -> RUNNING -> COMPLETED -> RELEASED
                     \\------------------ FAILED ------------------/

The desktop drives transitions; illegal transitions raise, which is how
tests pin the orchestration order (e.g. disks must be mounted before the
application is invoked, and resources must be relinquished exactly once).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.query import Allocation
from repro.desktop.vfs import MountHandle
from repro.errors import ReproError

__all__ = ["SessionState", "RunSession", "SessionError"]


class SessionError(ReproError):
    """Illegal session transition."""


class SessionState(enum.Enum):
    REQUESTED = "requested"
    SCHEDULED = "scheduled"
    MOUNTED = "mounted"
    RUNNING = "running"
    COMPLETED = "completed"
    RELEASED = "released"
    FAILED = "failed"


_LEGAL = {
    SessionState.REQUESTED: {SessionState.SCHEDULED, SessionState.FAILED},
    SessionState.SCHEDULED: {SessionState.MOUNTED, SessionState.FAILED},
    SessionState.MOUNTED: {SessionState.RUNNING, SessionState.FAILED},
    SessionState.RUNNING: {SessionState.COMPLETED, SessionState.FAILED},
    SessionState.COMPLETED: {SessionState.RELEASED},
    SessionState.RELEASED: set(),
    SessionState.FAILED: {SessionState.RELEASED},
}


@dataclass
class RunSession:
    """One user's tool run, from request to release."""

    session_id: int
    login: str
    tool_name: str
    state: SessionState = SessionState.REQUESTED
    allocation: Optional[Allocation] = None
    mounts: List[MountHandle] = field(default_factory=list)
    display_route: Optional[str] = None
    failure_reason: Optional[str] = None
    history: List[Tuple[float, SessionState]] = field(default_factory=list)

    def _transition(self, new: SessionState, now: float) -> None:
        if new not in _LEGAL[self.state]:
            raise SessionError(
                f"session {self.session_id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new
        self.history.append((now, new))

    # -- transitions ---------------------------------------------------------

    def scheduled(self, allocation: Allocation, now: float = 0.0) -> None:
        self.allocation = allocation
        self._transition(SessionState.SCHEDULED, now)

    def mounted(self, mounts: List[MountHandle], now: float = 0.0) -> None:
        self.mounts = list(mounts)
        self._transition(SessionState.MOUNTED, now)

    def running(self, display_route: Optional[str] = None,
                now: float = 0.0) -> None:
        self.display_route = display_route
        self._transition(SessionState.RUNNING, now)

    def completed(self, now: float = 0.0) -> None:
        self._transition(SessionState.COMPLETED, now)

    def released(self, now: float = 0.0) -> None:
        self._transition(SessionState.RELEASED, now)

    def failed(self, reason: str, now: float = 0.0) -> None:
        self.failure_reason = reason
        self._transition(SessionState.FAILED, now)

    @property
    def is_terminal(self) -> bool:
        return self.state is SessionState.RELEASED

    @property
    def access_key(self) -> Optional[str]:
        return self.allocation.access_key if self.allocation else None
