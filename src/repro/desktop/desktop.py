"""The network desktop: orchestrating events 1–6 of Figure 1.

Section 2's walk-through, reproduced step by step in :meth:`NetworkDesktop.run_tool`:

1. the user selects an application (``run_tool`` call),
2. the desktop "verifies that the user is authorized to run the selected
   application",
3. the application-management component builds the query and the ActYP
   service identifies/locates/selects resources and a shadow account,
4. "the virtual file system service mounts the application and data disks
   on to the selected machine",
5. the application is invoked and, for GUI applications, the display is
   routed to the user's browser (VNC),
6. on completion the disks are unmounted and the desktop "relinquishes
   the shadow account and resources by notifying the ActYP service".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.appmgmt.query_builder import ApplicationManager, ComposedQuery
from repro.core.pipeline import ActYPService
from repro.desktop.session import RunSession, SessionState
from repro.desktop.vfs import VirtualFileSystem
from repro.errors import ReproError

__all__ = ["UserAccount", "NetworkDesktop", "AuthorizationError"]


class AuthorizationError(ReproError):
    """The user may not run the selected application."""


@dataclass(frozen=True)
class UserAccount:
    """A PUNCH portal account."""

    login: str
    access_group: str = "public"
    #: Tools this account may run (None = any registered tool).
    authorized_tools: Optional[FrozenSet[str]] = None
    #: The user's storage service provider ("implicitly configured when a
    #: user requests a PUNCH account").
    storage_provider: str = "home:punch.purdue.edu"


class NetworkDesktop:
    """The web-accessible front end, bound to one ActYP deployment."""

    def __init__(
        self,
        service: ActYPService,
        app_manager: Optional[ApplicationManager] = None,
        vfs: Optional[VirtualFileSystem] = None,
    ):
        self.service = service
        self.app_manager = app_manager or ApplicationManager()
        self.vfs = vfs or VirtualFileSystem()
        self._users: Dict[str, UserAccount] = {}
        self._sessions: Dict[int, RunSession] = {}
        self._session_ids = itertools.count(1)

    # -- accounts -----------------------------------------------------------------

    def register_user(self, account: UserAccount) -> None:
        if account.login in self._users:
            raise ReproError(f"user {account.login!r} already registered")
        self._users[account.login] = account

    def _authorize(self, login: str, tool_name: str) -> UserAccount:
        account = self._users.get(login)
        if account is None:
            raise AuthorizationError(f"unknown user {login!r}")
        if (account.authorized_tools is not None
                and tool_name not in account.authorized_tools):
            raise AuthorizationError(
                f"user {login!r} is not authorized to run {tool_name!r}"
            )
        return account

    # -- the Figure 1 sequence -------------------------------------------------------

    def run_tool(
        self,
        login: str,
        tool_name: str,
        input_text: str = "",
        *,
        preferences: Optional[Mapping[str, str]] = None,
        gui: bool = False,
        now: float = 0.0,
    ) -> RunSession:
        """Execute events 1–5; the caller later invokes :meth:`complete_run`.

        Returns the session in ``RUNNING`` state (or ``FAILED`` with the
        reason recorded, without raising, so callers can inspect it the
        way the portal shows errors to users).
        """
        session = RunSession(
            session_id=next(self._session_ids),
            login=login, tool_name=tool_name,
        )
        self._sessions[session.session_id] = session

        # Event 1-2: authorization + application management.
        try:
            account = self._authorize(login, tool_name)
            composed: ComposedQuery = self.app_manager.handle(
                tool_name, input_text,
                login=login, access_group=account.access_group,
                preferences=preferences,
            )
        except ReproError as exc:
            session.failed(str(exc), now)
            return session

        # Event 3-6 (in Figure 1's numbering, 3-6 are inside ActYP): query
        # the resource-management pipeline.
        result = self.service.submit(composed.text, origin=login, now=now)
        if not result.ok:
            session.failed(result.error or "no resources", now)
            return session
        session.scheduled(result.allocation, now)

        # Mount application and data disks on the selected machine.
        try:
            mounts = [
                self.vfs.mount(result.allocation.machine_name,
                               f"apps:{tool_name}",
                               result.allocation.access_key, now),
                self.vfs.mount(result.allocation.machine_name,
                               account.storage_provider,
                               result.allocation.access_key, now),
            ]
        except ReproError as exc:
            session.failed(str(exc), now)
            self.service.release(result.allocation.access_key)
            return session
        session.mounted(mounts, now)

        # Invoke; route the display for GUI tools (VNC in production).
        display = (f"vnc://{result.allocation.machine_name}:"
                   f"{5900 + session.session_id % 100}" if gui else None)
        session.running(display, now)
        return session

    def complete_run(self, session_id: int, now: float = 0.0) -> RunSession:
        """Event 6: unmount disks, relinquish shadow account and machine."""
        session = self._sessions.get(session_id)
        if session is None:
            raise ReproError(f"unknown session {session_id}")
        if session.state is SessionState.RUNNING:
            session.completed(now)
        self.vfs.unmount_session(session.access_key or "")
        if session.allocation is not None:
            self.service.release(session.allocation.access_key)
        session.released(now)
        return session

    def abort_run(self, session_id: int, reason: str, now: float = 0.0
                  ) -> RunSession:
        """Abnormal termination: clean up whatever was set up."""
        session = self._sessions.get(session_id)
        if session is None:
            raise ReproError(f"unknown session {session_id}")
        if session.state not in (SessionState.FAILED, SessionState.RELEASED):
            session.failed(reason, now)
        if session.access_key:
            self.vfs.unmount_session(session.access_key)
            try:
                self.service.release(session.access_key)
            except ReproError:
                pass  # already released
        session.released(now)
        return session

    # -- introspection -----------------------------------------------------------

    def session(self, session_id: int) -> RunSession:
        s = self._sessions.get(session_id)
        if s is None:
            raise ReproError(f"unknown session {session_id}")
        return s

    def active_sessions(self) -> List[RunSession]:
        return [s for s in self._sessions.values()
                if s.state is SessionState.RUNNING]
