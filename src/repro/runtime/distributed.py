"""Distributed asyncio deployment: every pipeline stage on its own socket.

Where :class:`~repro.runtime.server.ActYPServer` fronts a whole in-process
pipeline with one endpoint, this module deploys the paper's architecture
literally: query managers, pool managers, and resource pools are separate
TCP servers (separate processes in production; separate asyncio servers
here), and every stage hop is a real socket round trip.

Topology (mirrors Figure 1)::

    client --TCP--> DistributedQueryManagerServer
                       --TCP--> DistributedPoolManagerServer
                                   --TCP--> DistributedPoolServer

Pool managers create pool servers on demand (binding a fresh listening
socket, the runtime analogue of "forks a process that initializes itself
and listens to a specified port") and delegate to peer pool managers over
TCP when they cannot satisfy a query locally.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config import PipelineConfig
from repro.core.pool_manager import (
    Delegate,
    FanoutToPools,
    PoolManager,
    RouteFailed,
    RouteToPool,
)
from repro.core.query import Query, QueryResult
from repro.core.query_manager import QueryManager
from repro.core.resource_pool import ResourcePool
from repro.database.directory import LocalDirectoryService
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import NoResourceAvailableError, ReproError, RuntimeProtocolError
from repro.net.address import Endpoint
from repro.runtime.protocol import read_frame, write_frame
from repro.runtime.wire import (
    query_from_dict,
    query_to_dict,
    result_payload_from_dict,
    result_payload_to_dict,
)

__all__ = ["DistributedActYP"]

logger = logging.getLogger(__name__)

_LOOP_TIME_ORIGIN = 0.0


async def _call(host: str, port: int, frame: Dict[str, Any]
                ) -> Dict[str, Any]:
    """One request/response over a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(writer, frame)
        return await read_frame(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - platform dependent
            pass


class _FrameServer:
    """Shared skeleton: accept connections, dispatch frames."""

    def __init__(self, host: str = "127.0.0.1"):
        self.host = host
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._on_connect,
                                                  self.host, 0)

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeProtocolError("server not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except asyncio.IncompleteReadError:
                    break
                response = await self.dispatch(frame)
                await write_frame(writer, response)
        except RuntimeProtocolError as exc:
            logger.warning("%s: protocol error: %s", type(self).__name__, exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError


class DistributedPoolServer(_FrameServer):
    """One resource-pool instance listening on its own port."""

    def __init__(self, pool: ResourcePool, host: str = "127.0.0.1"):
        super().__init__(host)
        self.pool = pool

    async def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        kind = frame.get("kind")
        if kind == "allocate":
            query = query_from_dict(frame["query"])
            loop = asyncio.get_running_loop()
            try:
                allocation = self.pool.allocate(query, now=loop.time())
                result = QueryResult(
                    query_id=query.query_id,
                    component_index=query.component_index,
                    component_count=query.component_count,
                    allocation=allocation,
                    completed_at=loop.time(),
                )
            except NoResourceAvailableError as exc:
                result = QueryResult(
                    query_id=query.query_id,
                    component_index=query.component_index,
                    component_count=query.component_count,
                    error=str(exc),
                    completed_at=loop.time(),
                )
            return {"kind": "result", **result_payload_to_dict(result)}
        if kind == "release":
            try:
                self.pool.release(str(frame.get("access_key", "")))
            except NoResourceAvailableError as exc:
                return {"kind": "error", "message": str(exc)}
            return {"kind": "released"}
        return {"kind": "error", "message": f"pool got {kind!r}"}


class DistributedPoolManagerServer(_FrameServer):
    """One pool manager; creates pool servers, delegates over TCP."""

    def __init__(self, manager: PoolManager, owner: "DistributedActYP",
                 host: str = "127.0.0.1"):
        super().__init__(host)
        self.manager = manager
        self.owner = owner

    async def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if frame.get("kind") != "route":
            return {"kind": "error",
                    "message": f"pool manager got {frame.get('kind')!r}"}
        query = query_from_dict(frame["query"])
        loop = asyncio.get_running_loop()
        decision = self.manager.route(query, now=loop.time())
        # Bind servers for any pools the routing step just created, then
        # re-resolve endpoints — the decision may hold the placeholder
        # registered before the socket was bound.
        await self.owner.spawn_new_pool_servers(self.manager)

        def resolved(entry) -> Endpoint:
            for e in self.manager.directory.lookup(entry.pool_name):
                if e.instance_number == entry.instance_number:
                    return e.endpoint
            return entry.endpoint

        if isinstance(decision, RouteToPool):
            ep = resolved(decision.entry)
            return await _call(ep.host, ep.port, {
                "kind": "allocate",
                "query": query_to_dict(decision.query),
            })
        if isinstance(decision, FanoutToPools):
            calls = [
                _call(resolved(e).host, resolved(e).port, {
                    "kind": "allocate",
                    "query": query_to_dict(decision.query),
                })
                for e in decision.entries
            ]
            replies = await asyncio.gather(*calls)
            results = [result_payload_from_dict(r) for r in replies]
            success = next((r for r in results if r.ok), None)
            for r in results:
                if r.ok and r is not success:
                    await self.owner.release_allocation(r.allocation)
            if success is not None:
                return {"kind": "result",
                        **result_payload_to_dict(success)}
            q = decision.query
            failed = QueryResult(
                query_id=q.query_id,
                component_index=q.component_index,
                component_count=q.component_count,
                error="; ".join(r.error or "?" for r in results),
            )
            return {"kind": "result", **result_payload_to_dict(failed)}
        if isinstance(decision, Delegate):
            return await _call(decision.peer.host, decision.peer.port, {
                "kind": "route",
                "query": query_to_dict(decision.query),
            })
        assert isinstance(decision, RouteFailed)
        failed = QueryResult(
            query_id=query.query_id,
            component_index=query.component_index,
            component_count=query.component_count,
            error=decision.reason,
        )
        return {"kind": "result", **result_payload_to_dict(failed)}


class DistributedQueryManagerServer(_FrameServer):
    """The client-facing stage: translate, decompose, dispatch, reintegrate."""

    def __init__(self, manager: QueryManager, host: str = "127.0.0.1",
                 release_hook=None):
        super().__init__(host)
        self.manager = manager
        #: Async callable(allocation) used to return redundant fan-out
        #: allocations; set by the deployment builder.
        self.release_hook = release_hook

    async def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if frame.get("kind") != "query":
            return {"kind": "error",
                    "message": f"query manager got {frame.get('kind')!r}"}
        payload = frame.get("payload")
        loop = asyncio.get_running_loop()
        try:
            query_id, dispatches = self.manager.admit(
                payload, format_name=frame.get("format", "punch"),
                origin=str(frame.get("origin", "tcp")), now=loop.time(),
            )
        except ReproError as exc:
            return {"kind": "error", "message": str(exc)}

        async def run_component(dispatch) -> Optional[QueryResult]:
            reply = await _call(
                dispatch.pool_manager.host, dispatch.pool_manager.port, {
                    "kind": "route",
                    "query": query_to_dict(dispatch.component),
                })
            result = result_payload_from_dict(reply)
            outcome = self.manager.complete_component(result)
            if (outcome is None and result.ok
                    and self.release_hook is not None):
                # Redundant fan-out duplicate: return the machine.
                await self.release_hook(result.allocation)
            return outcome

        outcomes = await asyncio.gather(*[run_component(d)
                                          for d in dispatches])
        final = next((o for o in outcomes if o is not None), None)
        if final is None:  # pragma: no cover - reintegration guarantees one
            return {"kind": "error", "message": "reintegration failed"}
        out = {"kind": "result", "ok": final.ok,
               **result_payload_to_dict(final)}
        return out


class DistributedActYP:
    """Builder/owner of a fully distributed asyncio deployment.

    Usage::

        dist = DistributedActYP(database, n_pool_managers=2)
        await dist.start()
        result = await dist.query("punch.rsrc.arch = sun")
        await dist.stop()
    """

    def __init__(self, database: WhitePagesDatabase, *,
                 n_pool_managers: int = 1,
                 config: Optional[PipelineConfig] = None,
                 host: str = "127.0.0.1", seed: int = 0):
        self.database = database
        self.config = (config or PipelineConfig()).validated()
        self.host = host
        self.directory = LocalDirectoryService(domain="live")
        self._seed = seed
        self._n_pm = n_pool_managers
        self.pm_servers: List[DistributedPoolManagerServer] = []
        self.qm_server: Optional[DistributedQueryManagerServer] = None
        self._pool_servers: Dict[Tuple[str, int], DistributedPoolServer] = {}
        self._spawn_lock = asyncio.Lock()
        self._started = False

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeProtocolError("deployment already started")
        pm_endpoints: List[Endpoint] = []
        for i in range(self._n_pm):
            manager = PoolManager(
                name=f"live-pm{i}",
                directory=self.directory,
                database=self.database,
                config=self.config.pool_manager,
                pool_config=self.config.pool,
                rng=np.random.default_rng(self._seed * 100 + i),
                pool_endpoint_allocator=self._unresolved_endpoint,
            )
            server = DistributedPoolManagerServer(manager, self, self.host)
            await server.start()
            ep = Endpoint(self.host, server.port, "live")
            # The manager's name doubles as its visited-list identity; the
            # directory needs the *resolved* endpoint for peering.
            manager.name = str(ep)
            self.pm_servers.append(server)
            pm_endpoints.append(ep)
        for ep in pm_endpoints:
            self.directory.add_peer_pool_manager(ep)
        qm = QueryManager(
            name="live-qm0",
            pool_managers=pm_endpoints,
            config=self.config.query_manager,
            reintegration_policy=self.config.query_manager
            .reintegration_policy,
            fanout=self.config.query_manager.fanout,
            default_ttl=self.config.pool_manager.delegation_ttl,
            rng=np.random.default_rng(self._seed + 999),
        )
        self.qm_server = DistributedQueryManagerServer(
            qm, self.host, release_hook=self.release_allocation)
        await self.qm_server.start()
        self._started = True

    def _unresolved_endpoint(self, name, instance) -> Endpoint:
        # Placeholder: replaced with the bound port in
        # spawn_new_pool_servers (the pool registers itself only once it
        # is listening, per Section 5.2.3).
        return Endpoint(self.host, 1, "live")

    async def spawn_new_pool_servers(self, manager: PoolManager) -> None:
        """Bind listening sockets for freshly created pool instances and
        fix up their directory registrations with the real port.

        Serialised: concurrent routing calls may observe the same fresh
        pool, and only one socket must be bound per instance.
        """
        async with self._spawn_lock:
            for (dir_name, instance), pool in list(
                    manager.local_pools.items()):
                key = (pool.name.full, pool.instance_number)
                if key in self._pool_servers:
                    continue
                server = DistributedPoolServer(pool, self.host)
                await server.start()
                self._pool_servers[key] = server
                # Re-register with the resolved endpoint.
                self.directory.deregister(dir_name, instance)
                self.directory.register(
                    dir_name, instance,
                    Endpoint(self.host, server.port, "live"),
                )

    async def release_allocation(self, allocation) -> None:
        server = self._pool_servers.get(
            (allocation.pool_name, allocation.pool_instance))
        if server is None:
            return
        await _call(self.host, server.port, {
            "kind": "release", "access_key": allocation.access_key,
        })

    async def stop(self) -> None:
        if self.qm_server is not None:
            await self.qm_server.stop()
        for server in self.pm_servers:
            await server.stop()
        for server in self._pool_servers.values():
            await server.stop()
        self._started = False

    async def __aenter__(self) -> "DistributedActYP":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- client conveniences ------------------------------------------------------------

    @property
    def query_port(self) -> int:
        if self.qm_server is None:
            raise RuntimeProtocolError("deployment not started")
        return self.qm_server.port

    async def query(self, payload: Any, *, format_name: str = "punch"
                    ) -> Dict[str, Any]:
        return await _call(self.host, self.query_port, {
            "kind": "query", "payload": payload, "format": format_name,
        })

    async def release(self, pool_name: str, pool_instance: int,
                      access_key: str) -> None:
        server = self._pool_servers.get((pool_name, pool_instance))
        if server is None:
            raise RuntimeProtocolError(
                f"no pool server for {pool_name}#{pool_instance}")
        reply = await _call(self.host, server.port, {
            "kind": "release", "access_key": access_key,
        })
        if reply.get("kind") != "released":
            raise RuntimeProtocolError(reply.get("message", "release failed"))
