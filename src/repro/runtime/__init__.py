"""Live asyncio deployment of the ActYP service.

The DES deployment measures; this one *runs*: a TCP server speaking a
length-prefixed JSON protocol in front of the same pipeline logic, plus
an async client.  It is the modern equivalent of the paper's deployed
prototype (clients connect to the ActYP service's TCP port, submit a
query, and receive machine + port + access key).

    server = ActYPServer(service)
    await server.start("127.0.0.1", 0)
    client = ActYPClient("127.0.0.1", server.port)
    result = await client.query("punch.rsrc.arch = sun")
    await client.release(result["allocation"]["access_key"])
"""

from repro.runtime.protocol import (
    MAX_FRAME_BYTES,
    MAX_MESSAGE_BYTES,
    decode_frame,
    encode_frame,
    encode_message,
    read_frame,
    result_to_dict,
    write_frame,
)
from repro.runtime.server import ActYPServer
from repro.runtime.client import ActYPClient
from repro.runtime.shard_worker import ShardWorker, run_shard_worker

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_MESSAGE_BYTES",
    "encode_frame",
    "encode_message",
    "decode_frame",
    "read_frame",
    "write_frame",
    "result_to_dict",
    "ActYPServer",
    "ActYPClient",
    "ShardWorker",
    "run_shard_worker",
]
