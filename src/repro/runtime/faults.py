"""Deterministic fault injection: seedable crash points for durability tests.

The WAL durability contract (see :mod:`repro.database.wal`) is only as
good as the crash windows it was tested against, so the shard worker's
write path is instrumented with **named crash points** — places where a
test can ask the process to die by ``SIGKILL``, exactly as an OOM kill
or power loss would, with no atexit handlers, no flushes, no goodbyes:

==========================  ================================================
crash point                 window it exercises
==========================  ================================================
``wal.before_append``       op applied in memory, zero WAL bytes written —
                            the op must be *absent* after recovery
``wal.mid_append``          a torn (half-written) WAL record — recovery
                            must discard it fail-closed
``wal.after_append``        WAL bytes written, reply never sent — the op
                            must be *present* after recovery (the client
                            saw an error; at-most-once ambiguity resolved
                            in favour of the durable log)
``reply.mid_frame``         reply frame torn mid-write — the client must
                            surface a protocol error, never a half-frame
``checkpoint.before_rename``  snapshot tmp file written, not yet renamed —
                            the old snapshot + full WAL stay authoritative
``checkpoint.after_rename``  snapshot renamed, WAL not yet truncated — the
                            snapshot's LSN watermark must make the stale
                            log records no-ops on replay
==========================  ================================================

Injection is **off by default and free when off**: every instrumented
site costs one module-global ``is None`` check.  A test arms an
injector either in-process (:func:`install`), over the wire via the
shard worker's ``fault`` verb (countdowns land in the worker that will
crash), or at spawn time through the ``REPRO_FAULTS`` environment
variable (JSON, read by :func:`install_from_env` in the worker entry
point) for crash-during-recovery scenarios.

Triggers are *countdowns*: ``{"wal.after_append": 3}`` means "die on
the third hit of that point".  :class:`FaultPlan` derives reproducible
kill schedules for the randomized crash-recovery property test from a
single integer seed.
"""

from __future__ import annotations

import json
import os
import random
import signal
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "FaultPlan",
    "crash_point",
    "should_fire",
    "die",
    "install",
    "installed",
    "install_from_env",
    "uninstall",
    "FAULTS_ENV_VAR",
    "DelayInjector",
    "install_delays",
    "installed_delays",
    "delay_for",
]

#: Every instrumented site, in write-path order.  The name is the
#: contract: tests reference points by these strings, and an injector
#: refuses unknown names so a typo cannot silently arm nothing.
CRASH_POINTS = (
    "wal.before_append",
    "wal.mid_append",
    "wal.after_append",
    "reply.mid_frame",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
)

#: Spawn-time injector config (JSON) for supervisor-spawned workers:
#: ``{"triggers": {...}, "shard": <index or null>}``.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class FaultInjector:
    """Countdown triggers over the named crash points.

    ``triggers`` maps crash-point name → remaining hits before firing;
    a trigger at 1 fires on the next hit.  ``shard`` scopes the
    injector to one worker when the config travels by environment
    variable (every spawned worker reads the same env).
    """

    def __init__(self, triggers: Dict[str, int], *,
                 shard: Optional[int] = None):
        for point in triggers:
            if point not in CRASH_POINTS:
                raise ValueError(f"unknown crash point {point!r}")
        self.triggers = {point: int(count)
                         for point, count in triggers.items()}
        self.shard = shard
        #: Audit trail of (point, remaining-after-hit) for debugging.
        self.hits: List[Tuple[str, int]] = []

    def hit_counts(self) -> Dict[str, int]:
        """Hits per crash point so far — the ``metrics`` verb surfaces
        this so a scenario can assert a countdown is actually ticking."""
        counts: Dict[str, int] = {}
        for point, _ in self.hits:
            counts[point] = counts.get(point, 0) + 1
        return counts

    def should_fire(self, point: str) -> bool:
        """Count one hit of ``point``; True when its countdown expires.

        The expired trigger is removed, so a caller that performs
        preparatory damage (e.g. the torn half-record of
        ``wal.mid_append``) before calling :func:`die` cannot re-fire.
        """
        remaining = self.triggers.get(point)
        if remaining is None:
            return False
        remaining -= 1
        self.hits.append((point, remaining))
        if remaining > 0:
            self.triggers[point] = remaining
            return False
        del self.triggers[point]
        return True

    def to_json(self) -> str:
        return json.dumps({"triggers": self.triggers, "shard": self.shard})

    @classmethod
    def from_json(cls, text: str) -> "FaultInjector":
        data = json.loads(text)
        return cls(dict(data.get("triggers", {})), shard=data.get("shard"))


#: The active injector.  ``None`` (the default) makes every crash point
#: a single attribute load + comparison.
_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    global _ACTIVE
    _ACTIVE = injector


def installed() -> Optional[FaultInjector]:
    return _ACTIVE


def uninstall() -> None:
    install(None)


def install_from_env(shard_index: Optional[int] = None) -> None:
    """Arm the injector described by ``REPRO_FAULTS``, if any.

    A config carrying a ``shard`` only arms in the worker whose
    ``shard_index`` matches — the supervisor exports one env for the
    whole fleet, but the kill should land in exactly one process.
    """
    text = os.environ.get(FAULTS_ENV_VAR)
    if not text:
        return
    try:
        injector = FaultInjector.from_json(text)
    except (ValueError, KeyError, TypeError):
        return  # malformed env must never take a worker down
    if injector.shard is not None and injector.shard != shard_index:
        return
    install(injector)


def should_fire(point: str) -> bool:
    """One hit of ``point``; True when the caller should now crash
    (after performing any point-specific damage, e.g. a torn write)."""
    if _ACTIVE is None:
        return False
    return _ACTIVE.should_fire(point)


def die() -> None:  # pragma: no cover - the process does not survive
    """SIGKILL this process: no cleanup, no flush — a real crash."""
    os.kill(os.getpid(), signal.SIGKILL)


def crash_point(point: str) -> None:
    """Instrumentation helper for points with no preparatory damage."""
    if _ACTIVE is not None and _ACTIVE.should_fire(point):
        die()  # pragma: no cover - the process does not survive


# ---------------------------------------------------------------------------
# Delay injection: slow-worker brownouts (the non-fatal fault family)
# ---------------------------------------------------------------------------


class DelayInjector:
    """Per-verb artificial service delays — a *brownout*, not a crash.

    ``delays`` maps a shard-worker verb name (or ``"*"`` for every
    verb) to seconds of added latency before dispatch.  Unlike the
    crash points, delays are persistent once armed (no countdown):
    the scenario engine arms one worker, measures the fan-out tail
    under head-of-line blocking, and disarms.

    Verb names are validated against the caller-supplied vocabulary
    (the shard worker passes its verb table), so a typo'd scenario
    slows nothing silently — same fail-loud contract as the crash
    points.
    """

    def __init__(self, delays: Dict[str, float], *,
                 known_verbs: Optional[Sequence[str]] = None):
        for verb, seconds in delays.items():
            if known_verbs is not None and verb != "*" \
                    and verb not in known_verbs:
                raise ValueError(f"unknown verb {verb!r} in delay map")
            if float(seconds) < 0:
                raise ValueError(f"delay for {verb!r} must be >= 0")
        self.delays = {str(verb): float(seconds)
                       for verb, seconds in delays.items()}
        #: Times each verb's delay actually fired (non-zero delay
        #: returned), keyed by the verb that was slowed.  The shard
        #: worker's ``metrics`` verb surfaces this so a scenario can
        #: assert its brownout landed where intended — and capture the
        #: evidence *before* disarming resets it.
        self.fired: Dict[str, int] = {}

    def delay_for(self, verb: str) -> float:
        delay = self.delays.get(verb, self.delays.get("*", 0.0))
        if delay > 0:
            self.fired[verb] = self.fired.get(verb, 0) + 1
        return delay


_ACTIVE_DELAYS: Optional[DelayInjector] = None


def install_delays(injector: Optional[DelayInjector]) -> None:
    global _ACTIVE_DELAYS
    _ACTIVE_DELAYS = injector


def installed_delays() -> Optional[DelayInjector]:
    return _ACTIVE_DELAYS


def delay_for(verb: str) -> float:
    """Armed delay (seconds) for ``verb``; 0.0 when off — and when off
    this is one module-global ``is None`` check, like the crash
    points."""
    if _ACTIVE_DELAYS is None:
        return 0.0
    return _ACTIVE_DELAYS.delay_for(verb)


class FaultPlan:
    """A reproducible kill schedule for randomized crash-recovery tests.

    From one integer seed, derives which operations of a history get a
    kill and at which crash point — so a failing property run can be
    replayed exactly by its seed.
    """

    def __init__(self, kills: Sequence[Tuple[int, str]]):
        self.kills = sorted((int(i), str(p)) for i, p in kills)
        for _, point in self.kills:
            if point not in CRASH_POINTS:
                raise ValueError(f"unknown crash point {point!r}")

    @classmethod
    def random(cls, seed: int, n_ops: int, *, kills: int = 3,
               points: Sequence[str] = ("wal.before_append",
                                        "wal.mid_append",
                                        "wal.after_append",
                                        "reply.mid_frame")) -> "FaultPlan":
        rng = random.Random(seed)
        n_kills = min(kills, n_ops)
        indexes = rng.sample(range(n_ops), n_kills) if n_ops else []
        return cls([(i, rng.choice(list(points))) for i in indexes])

    def point_for(self, op_index: int) -> Optional[str]:
        for i, point in self.kills:
            if i == op_index:
                return point
        return None

    def __iter__(self):
        return iter(self.kills)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.kills!r})"
