"""Wire protocol of the live runtime: length-prefixed JSON frames.

Frame = 4-byte big-endian length + UTF-8 JSON object.  Every message is
an object with a ``kind`` plus kind-specific fields:

- request  ``{"kind": "query", "payload": <text>, "format": "punch"}``
- request  ``{"kind": "release", "access_key": <hex>}``
- request  ``{"kind": "stats"}``
- response ``{"kind": "result", "ok": true, "allocation": {...}}``
- response ``{"kind": "error", "message": <text>}``

The protocol is deliberately simple — the paper's pipeline moved queries
as key-value text over TCP/UDP; JSON is the 2020s equivalent.

Continuation frames
-------------------
Queries and allocations are tiny, but the shard service
(:mod:`repro.runtime.shard_worker`) ships bulk ``match`` result sets and
whole v3 snapshots, which can exceed the 1 MiB single-frame bound.  A
logical message larger than :data:`MAX_FRAME_BYTES` is therefore split
into **continuation frames**: the JSON body bytes are chunked, and every
chunk except the last sets the high bit of its length prefix.  A reader
accumulates flagged chunks until the final (unflagged) frame and decodes
the concatenation.  Single-frame messages are byte-identical to the
pre-continuation encoding, so old and new peers interoperate for every
message that fits in one frame; the total reassembled size is capped at
:data:`MAX_MESSAGE_BYTES` so a hostile stream still cannot balloon
memory.

The async helpers (:func:`read_frame` / :func:`write_frame`) serve the
asyncio runtime; the ``_sock`` variants speak the identical encoding
over blocking sockets for synchronous callers (the shard-service client
is called from pool/scheduler code that is not async).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict

from repro.core.query import Allocation, QueryResult
from repro.errors import RuntimeProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_MESSAGE_BYTES",
    "encode_frame",
    "encode_message",
    "decode_frame",
    "read_frame",
    "write_frame",
    "read_frame_sock",
    "write_frame_sock",
    "result_to_dict",
    "allocation_to_dict",
]

#: Upper bound on a single frame body; anything bigger must be split
#: into continuation frames (or indicates a corrupt or hostile stream).
MAX_FRAME_BYTES = 1 << 20

#: Upper bound on a reassembled multi-frame message.  Large enough for a
#: full-shard match result or snapshot at million-record fleets, small
#: enough that a hostile length prefix cannot exhaust memory.
MAX_MESSAGE_BYTES = 1 << 30

_LEN = struct.Struct(">I")
#: High bit of the length prefix: "another chunk of this message
#: follows".  Legal frame lengths are <= MAX_FRAME_BYTES, so the bit can
#: never be set on a well-formed pre-continuation frame.
_CONT_FLAG = 0x80000000


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Encode ``obj`` as exactly one frame; raises when it cannot fit.

    Callers that may produce bulk replies should use
    :func:`encode_message`, which splits into continuation frames
    instead of failing.
    """
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RuntimeProtocolError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(body)) + body


def encode_message(obj: Dict[str, Any]) -> bytes:
    """Encode ``obj`` as one frame, or several continuation frames.

    The common case (body <= :data:`MAX_FRAME_BYTES`) produces output
    byte-identical to :func:`encode_frame`.
    """
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) <= MAX_FRAME_BYTES:
        return _LEN.pack(len(body)) + body
    if len(body) > MAX_MESSAGE_BYTES:
        raise RuntimeProtocolError(
            f"message of {len(body)} bytes exceeds limit {MAX_MESSAGE_BYTES}"
        )
    out = bytearray()
    for start in range(0, len(body), MAX_FRAME_BYTES):
        chunk = body[start:start + MAX_FRAME_BYTES]
        last = start + MAX_FRAME_BYTES >= len(body)
        header = len(chunk) if last else (len(chunk) | _CONT_FLAG)
        out += _LEN.pack(header)
        out += chunk
    return bytes(out)


def decode_frame(body: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RuntimeProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict) or "kind" not in obj:
        raise RuntimeProtocolError("frame must be an object with a 'kind'")
    return obj


def _check_chunk_length(length: int, total_so_far: int) -> int:
    """Validate one chunk's announced length against both caps; returns
    the payload length with the continuation flag stripped."""
    payload = length & ~_CONT_FLAG
    if payload > MAX_FRAME_BYTES:
        raise RuntimeProtocolError(
            f"announced frame of {payload} bytes exceeds limit"
        )
    if length & _CONT_FLAG and payload == 0:
        # encode_message never emits empty continuation chunks; a
        # stream of them would otherwise loop the reader forever
        # without ever tripping the byte caps.
        raise RuntimeProtocolError("empty continuation frame")
    if total_so_far + payload > MAX_MESSAGE_BYTES:
        raise RuntimeProtocolError(
            f"reassembled message exceeds {MAX_MESSAGE_BYTES} byte limit"
        )
    return payload


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one logical message (reassembling continuation frames)."""
    parts: list = []
    total = 0
    while True:
        header = await reader.readexactly(_LEN.size)
        (length,) = _LEN.unpack(header)
        payload = _check_chunk_length(length, total)
        body = await reader.readexactly(payload)
        parts.append(body)
        total += payload
        if not length & _CONT_FLAG:
            break
    return decode_frame(parts[0] if len(parts) == 1 else b"".join(parts))


async def write_frame(writer: asyncio.StreamWriter, obj: Dict[str, Any]
                      ) -> None:
    writer.write(encode_message(obj))
    await writer.drain()


# -- synchronous (blocking-socket) counterparts ------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on a truncated stream."""
    parts: list = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise RuntimeProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame_sock(sock: socket.socket) -> Dict[str, Any]:
    """Blocking read of one logical message from ``sock``."""
    parts: list = []
    total = 0
    while True:
        (length,) = _LEN.unpack(_recv_exactly(sock, _LEN.size))
        payload = _check_chunk_length(length, total)
        parts.append(_recv_exactly(sock, payload))
        total += payload
        if not length & _CONT_FLAG:
            break
    return decode_frame(parts[0] if len(parts) == 1 else b"".join(parts))


def write_frame_sock(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Blocking write of one logical message to ``sock``."""
    sock.sendall(encode_message(obj))


def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    return {
        "machine_name": allocation.machine_name,
        "address": allocation.address,
        "execution_unit_port": allocation.execution_unit_port,
        "access_key": allocation.access_key,
        "shadow_account": allocation.shadow_account,
        "pool_name": allocation.pool_name,
        "pool_instance": allocation.pool_instance,
    }


def result_to_dict(result: QueryResult) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "kind": "result",
        "ok": result.ok,
        "query_id": result.query_id,
        "component_index": result.component_index,
        "component_count": result.component_count,
    }
    if result.allocation is not None:
        out["allocation"] = allocation_to_dict(result.allocation)
    if result.error is not None:
        out["error"] = result.error
    return out
