"""Wire protocol of the live runtime: length-prefixed JSON frames.

Frame = 4-byte big-endian length + UTF-8 JSON object.  Every frame is an
object with a ``kind`` plus kind-specific fields:

- request  ``{"kind": "query", "payload": <text>, "format": "punch"}``
- request  ``{"kind": "release", "access_key": <hex>}``
- request  ``{"kind": "stats"}``
- response ``{"kind": "result", "ok": true, "allocation": {...}}``
- response ``{"kind": "error", "message": <text>}``

The protocol is deliberately simple — the paper's pipeline moved queries
as key-value text over TCP/UDP; JSON is the 2020s equivalent.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict

from repro.core.query import Allocation, QueryResult
from repro.errors import RuntimeProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "result_to_dict",
    "allocation_to_dict",
]

#: Upper bound on a frame body; queries and results are tiny, so anything
#: bigger indicates a corrupt or hostile stream.
MAX_FRAME_BYTES = 1 << 20

_LEN = struct.Struct(">I")


def encode_frame(obj: Dict[str, Any]) -> bytes:
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RuntimeProtocolError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RuntimeProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict) or "kind" not in obj:
        raise RuntimeProtocolError("frame must be an object with a 'kind'")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RuntimeProtocolError(
            f"announced frame of {length} bytes exceeds limit"
        )
    body = await reader.readexactly(length)
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, obj: Dict[str, Any]
                      ) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    return {
        "machine_name": allocation.machine_name,
        "address": allocation.address,
        "execution_unit_port": allocation.execution_unit_port,
        "access_key": allocation.access_key,
        "shadow_account": allocation.shadow_account,
        "pool_name": allocation.pool_name,
        "pool_instance": allocation.pool_instance,
    }


def result_to_dict(result: QueryResult) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "kind": "result",
        "ok": result.ok,
        "query_id": result.query_id,
        "component_index": result.component_index,
        "component_count": result.component_count,
    }
    if result.allocation is not None:
        out["allocation"] = allocation_to_dict(result.allocation)
    if result.error is not None:
        out["error"] = result.error
    return out
