"""Wire serialisation of pipeline objects for the distributed runtime.

Queries cross stage boundaries in the distributed asyncio deployment, so
they need a faithful JSON encoding — including the routing state the
paper insists travels *with* the query ("all state information is carried
with the query itself"): component indices, TTL, visited pool managers.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.operators import Op, RangeValue
from repro.core.query import Allocation, Clause, Query, QueryResult
from repro.errors import RuntimeProtocolError
from repro.runtime.protocol import allocation_to_dict

__all__ = [
    "clause_to_dict", "clause_from_dict",
    "query_to_dict", "query_from_dict",
    "result_payload_to_dict", "result_payload_from_dict",
]


def _value_to_dict(value: Any) -> Dict[str, Any]:
    if isinstance(value, RangeValue):
        return {"t": "range", "lo": value.lo, "hi": value.hi}
    if isinstance(value, frozenset):
        return {"t": "set", "v": sorted(str(x) for x in value)}
    if isinstance(value, bool):  # before int check; bools are ints
        return {"t": "str", "v": str(value)}
    if isinstance(value, (int, float)):
        return {"t": "num", "v": float(value)}
    return {"t": "str", "v": str(value)}


def _value_from_dict(data: Dict[str, Any]) -> Any:
    kind = data.get("t")
    if kind == "range":
        return RangeValue(float(data["lo"]), float(data["hi"]))
    if kind == "set":
        return frozenset(data["v"])
    if kind == "num":
        return float(data["v"])
    if kind == "str":
        return str(data["v"])
    raise RuntimeProtocolError(f"unknown value encoding {kind!r}")


def clause_to_dict(clause: Clause) -> Dict[str, Any]:
    return {
        "family": clause.family,
        "type": clause.type,
        "name": clause.name,
        "op": str(clause.op),
        "value": _value_to_dict(clause.value),
    }


def clause_from_dict(data: Dict[str, Any]) -> Clause:
    try:
        op = Op.RANGE if data["op"] == "range" else \
            Op.IN if data["op"] == "in" else Op.parse(data["op"])
        return Clause(
            family=data["family"], type=data["type"], name=data["name"],
            op=op, value=_value_from_dict(data["value"]),
        )
    except KeyError as exc:
        raise RuntimeProtocolError(f"malformed clause: missing {exc}") from exc


def query_to_dict(query: Query) -> Dict[str, Any]:
    return {
        "clauses": [clause_to_dict(c) for c in query.clauses],
        "query_id": query.query_id,
        "origin": query.origin,
        "component_index": query.component_index,
        "component_count": query.component_count,
        "ttl": query.ttl,
        "visited_pool_managers": list(query.visited_pool_managers),
        "submitted_at": query.submitted_at,
    }


def query_from_dict(data: Dict[str, Any]) -> Query:
    try:
        return Query(
            clauses=tuple(clause_from_dict(c) for c in data["clauses"]),
            query_id=int(data.get("query_id", 0)),
            origin=str(data.get("origin", "")),
            component_index=int(data.get("component_index", 0)),
            component_count=int(data.get("component_count", 1)),
            ttl=int(data.get("ttl", 4)),
            visited_pool_managers=tuple(
                data.get("visited_pool_managers", [])),
            submitted_at=float(data.get("submitted_at", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise RuntimeProtocolError(f"malformed query: {exc}") from exc


def result_payload_to_dict(result: QueryResult) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "query_id": result.query_id,
        "component_index": result.component_index,
        "component_count": result.component_count,
        "completed_at": result.completed_at,
    }
    if result.allocation is not None:
        out["allocation"] = allocation_to_dict(result.allocation)
    if result.error is not None:
        out["error"] = result.error
    return out


def result_payload_from_dict(data: Dict[str, Any]) -> QueryResult:
    allocation = None
    if "allocation" in data:
        a = data["allocation"]
        allocation = Allocation(
            machine_name=a["machine_name"],
            address=a.get("address", a["machine_name"]),
            execution_unit_port=int(a.get("execution_unit_port", 7070)),
            access_key=a["access_key"],
            shadow_account=a.get("shadow_account"),
            pool_name=a.get("pool_name", ""),
            pool_instance=int(a.get("pool_instance", -1)),
        )
    return QueryResult(
        query_id=int(data.get("query_id", 0)),
        component_index=int(data.get("component_index", 0)),
        component_count=int(data.get("component_count", 1)),
        allocation=allocation,
        error=data.get("error"),
        completed_at=float(data.get("completed_at", 0.0)),
    )
