"""Long-lived shard workers: live white-pages shards behind the wire.

PR 4's :class:`~repro.database.sharding.ParallelMatcher` buys multi-core
matching by forking point-in-time copies of the shards — every matcher
pays the fork + copy-on-write cost and discards all warm state when it
closes.  A :class:`ShardWorker` is the persistent alternative: one
process owns one **live** :class:`~repro.database.whitepages
.WhitePagesDatabase` shard — attribute indexes, subscription map, and
query-class caches stay warm across requests — and serves shard verbs
over the length-prefixed JSON frame protocol
(:mod:`repro.runtime.protocol`).  The client half
(:class:`~repro.database.service.ShardServiceClient`) routes point
operations by CRC-32 of the machine name and fans queries out across
workers, so the whole service presents the duck-typed ``WhitePages``
surface out-of-process.

Verb table (request ``kind`` → reply ``kind``)
----------------------------------------------
=================  =========================  ==============================
verb               request fields             reply
=================  =========================  ==============================
``register``       ``row``                    ``ok``
``remove``         ``name``                   ``record`` (the removed row)
``get``            ``name``                   ``record``
``update``         ``row``                    ``ok``
``update_dynamic`` ``name``, ``dynamic``      ``record`` (the new row)
``match``          ``clauses``,               ``records`` (rows) or
                   ``include_taken``,         ``names``
                   ``names_only``
``count``          ``clauses``,               ``count``
                   ``include_taken``
``names``          —                          ``names``
``scan``           ``include_taken``          ``records`` (rows, name order)
``take``           ``name``, ``pool``         ``ok`` with ``taken`` bool
``take_all``       ``names``, ``pool``        ``names`` (actually taken)
``release``        ``name``, ``pool``         ``ok``
``release_pool``   ``pool``                   ``count``
``holder_of``      ``name``                   ``holder`` (name or null)
``taken_count``    —                          ``count``
``free_names``     —                          ``names`` (unsorted)
``count_up``       —                          ``count``
``len``            —                          ``count``
``contains``       ``name``                   ``ok`` with ``contains`` bool
``snapshot``       ``path`` (optional),       ``snapshot`` (``crc``,
                   ``version``                ``machines``; ``text`` inline
                                              when no path given)
``health``         —                          ``health`` (pid, shard index,
                                              machines, requests, wal, ...)
``metrics``        ``max_spans`` (optional)   ``metrics`` (registry snapshot
                                              with per-verb latency
                                              histograms, recent span tail,
                                              slow-op count, WAL stats,
                                              fault-injection counts; see
                                              :mod:`repro.obs.telemetry`)
``set_telemetry``  ``enabled``                ``set_telemetry`` (flips the
                                              worker's per-op recording at
                                              runtime; the overhead gate
                                              A/B-times one live fleet)
``reset``          ``rows`` (optional)        ``ok`` (fresh database)
``fault``          ``triggers``               ``ok`` (arms crash-point
                                              countdowns in this worker —
                                              fault-injection tooling, see
                                              :mod:`repro.runtime.faults`)
``routing``        —                          ``routing`` (epoch, shards,
                                              routing table if known)
``migrate_begin``  ``path``, ``version``      ``snapshot`` with ``watermark``
                                              (no WAL truncation — the tail
                                              stays streamable)
``migrate_tail``   ``after_lsn``,             ``tail`` (``entries``,
                   ``max_records``            ``wal_lsn``, ``reason``)
``migrate_cutover`` ``epoch``; ``retire``     ``ok`` (fence/unfence a source,
                    and/or ``routing``        or activate a target's table)
``shutdown``       —                          ``ok``, then the server stops
=================  =========================  ==============================

Routing epochs (live resharding)
--------------------------------
A worker is born into a routing **epoch** (0 for a fleet that never
resharded).  Point-op frames may carry ``"epoch"``: when it differs
from the worker's own, the op is refused with ``StaleRoutingError`` —
the client refreshes its routing table (the error frame carries the
worker's table when it knows one) and retries against the right fleet.
A **retired** worker (its shard migrated away by
:class:`~repro.database.resharding.ShardMigrator`) refuses everything
except ``health``/``routing``/``fault``/``migrate_tail``/
``migrate_cutover``/``shutdown`` the same way, so stale clients can
never read or write a dead shard.

Durability (the write-ahead op log)
-----------------------------------
With a :class:`~repro.database.wal.WriteAheadLog` attached, every
mutating verb that succeeds is appended to the log — the wire frame
verbatim, so the log reuses the v3 row codec — and, in ``fsync`` mode,
made durable *before the reply frame is sent*.  Concurrent connections
group-commit: appends that land in the same event-loop batch (or the
same ``group_commit_interval`` window) share one ``fdatasync``.
Restart is snapshot-load + log-tail replay (:meth:`ShardWorker.replay`),
with the snapshot's embedded LSN watermark skipping records already
included and any torn tail discarded fail-closed.  Without a log the
worker keeps PR 5's lossy last-checkpoint contract unchanged.

Database errors cross the wire as ``{"kind": "error", "error":
"<exception class>", "message": ...}``; the client re-raises the named
:mod:`repro.errors` class, so remote error paths are type-identical to
the in-process ones.  Records travel as compact v3 rows
(:data:`~repro.database.records.RECORD_ROW_FIELDS`), queries as the
clause encoding of :mod:`repro.runtime.wire`.  Replies larger than one
frame (bulk matches, inline snapshots) ride the protocol's continuation
frames.

A worker validates routing on every ``register``: a record whose name
CRC-routes to a different shard is refused, so a mis-configured client
cannot silently split the name space.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import time
import zlib
from typing import Any, Dict, List, Optional

from repro.database.records import (
    MachineRecord,
    _FLAGS_BY_BITS,
    _STATE_BY_VALUE,
)
from repro.database.sharding import shard_of
from repro.database.wal import WriteAheadLog
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import (
    ConfigError,
    DatabaseError,
    ReproError,
    RuntimeProtocolError,
)
from repro.obs.telemetry import MetricsRegistry
from repro.obs.tracing import SpanRecorder
from repro.runtime import faults
from repro.runtime.protocol import encode_message, read_frame, write_frame
from repro.runtime.wire import clause_from_dict, clause_to_dict

__all__ = [
    "ShardWorker",
    "run_shard_worker",
    "encode_dynamic",
    "decode_dynamic",
    "clauses_to_wire",
    "clauses_from_wire",
    "MUTATING_VERBS",
]

logger = logging.getLogger(__name__)

#: Verbs that change shard state — exactly the set the write-ahead log
#: records (and the only frames :meth:`ShardWorker.replay` will apply).
MUTATING_VERBS = frozenset({
    "register", "remove", "update", "update_dynamic",
    "take", "take_all", "release", "release_pool", "reset",
})

#: Verbs a *retired* worker (shard migrated away) still serves: health
#: and fault tooling for the supervisor, ``metrics`` so a fleet sweep
#: never loses a retired shard's telemetry, ``migrate_tail`` for the
#: final post-fence drain, ``migrate_cutover`` so the migrator can
#: publish the new routing table (or roll the fence back), and
#: ``shutdown``.
_RETIRED_VERBS = frozenset({
    "health", "routing", "fault", "metrics", "migrate_tail",
    "migrate_cutover", "shutdown",
})

#: Dynamic fields (1-7) that need a codec beyond JSON's native types.
_STATE_KEY = "state"
_FLAGS_KEY = "service_status_flags"


def encode_dynamic(dynamic: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe encoding of ``update_dynamic`` kwargs (state → value
    string, service flags → bit mask; numbers pass through)."""
    out: Dict[str, Any] = {}
    for key, value in dynamic.items():
        if key == _STATE_KEY and value is not None:
            out[key] = str(value)
        elif key == _FLAGS_KEY and value is not None:
            out[key] = ((1 if value.execution_unit_up else 0)
                        | (2 if value.pvfs_manager_up else 0)
                        | (4 if value.proxy_server_up else 0))
        else:
            out[key] = value
    return out


def decode_dynamic(dynamic: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`encode_dynamic`: wire values back to the
    :class:`MachineRecord` domain types (state enum, flags object)."""
    out: Dict[str, Any] = {}
    for key, value in dynamic.items():
        if key == _STATE_KEY and value is not None:
            out[key] = _STATE_BY_VALUE[value]
        elif key == _FLAGS_KEY and value is not None:
            out[key] = _FLAGS_BY_BITS[int(value)]
        else:
            out[key] = value
    return out


def clauses_to_wire(plan: Any) -> Optional[List[Dict[str, Any]]]:
    """Normalise any ``match()`` plan argument to a wire clause list.

    ``None`` (match-all) stays ``None``; a compiled plan contributes its
    clause set, so compilation on the worker side reproduces the exact
    plan the caller held.
    """
    from repro.core.plan import ClauseSet, QueryPlan
    from repro.core.query import Query
    if plan is None:
        return None
    if isinstance(plan, QueryPlan):
        clause_set = plan.clause_set
    elif isinstance(plan, ClauseSet):
        clause_set = plan
    elif isinstance(plan, Query):
        clause_set = ClauseSet.from_query(plan)
    else:  # raw clause iterable
        clause_set = ClauseSet.from_clauses(plan)
    return [clause_to_dict(c) for c in clause_set.clauses]


def clauses_from_wire(data: Optional[List[Dict[str, Any]]]) -> Any:
    """Decode a wire clause list back to clause objects (``None`` stays
    the match-all plan)."""
    if data is None:
        return None
    return [clause_from_dict(c) for c in data]


class ShardWorker:
    """One live shard behind a TCP endpoint.

    Parameters
    ----------
    database:
        The shard's live :class:`WhitePagesDatabase` (indexes and caches
        stay warm for the worker's lifetime).
    shard_index, shards:
        This worker's slot in the N-shard layout; ``register`` refuses
        records that :func:`~repro.database.sharding.shard_of` routes
        elsewhere.  ``shards=1`` accepts every name.
    wal:
        An open :class:`~repro.database.wal.WriteAheadLog`, or ``None``
        for PR 5's lossy last-checkpoint contract.  With a log in
        ``fsync`` mode, mutating verbs are made durable (group-commit)
        before their reply frame is sent.
    epoch:
        The routing epoch this worker serves (0 for a fleet that never
        resharded).  Point-op frames carrying a different ``"epoch"``
        are refused with :class:`~repro.errors.StaleRoutingError`.
    telemetry:
        ``False`` disables the metrics registry and span recording —
        the off arm of the overhead scale gate.  The ``metrics`` verb
        still answers (with empty series).
    slow_op_threshold:
        Ops taking at least this many seconds (injected delay, WAL
        commit wait, and reply write included) are appended to the
        slow-op JSONL at ``slow_op_path``.
    slow_op_path:
        Where slow spans are logged, conventionally beside the shard's
        WAL.  ``None`` keeps the in-memory span ring only.
    """

    def __init__(self, database: Optional[WhitePagesDatabase] = None, *,
                 shard_index: int = 0, shards: int = 1,
                 wal: Optional[WriteAheadLog] = None,
                 epoch: int = 0,
                 telemetry: bool = True,
                 slow_op_threshold: float = 0.25,
                 slow_op_path: Optional[str] = None):
        if not 0 <= shard_index < shards:
            raise DatabaseError(
                f"shard index {shard_index} outside 0..{shards - 1}")
        self.database = database if database is not None \
            else WhitePagesDatabase()
        self.shard_index = shard_index
        self.shards = shards
        self.wal = wal
        self.epoch = int(epoch)
        #: Set by ``migrate_cutover {retire: true}``: this shard's data
        #: has moved to a new fleet; refuse (almost) everything.
        self.retired = False
        #: The current routing table as a wire dict, once known (set at
        #: cutover).  Carried on StaleRoutingError frames so refused
        #: clients can refresh without a second round trip.
        self.routing: Optional[Dict[str, Any]] = None
        #: ``migrate_begin`` pins the log: checkpoint-triggered
        #: truncation is deferred until cutover/rollback so the
        #: migrator's tail stream can never lose records underneath it.
        self._wal_pinned = False
        self.requests = 0
        self.started_at = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        #: The in-flight group-commit sync, shared by every handler
        #: whose op is waiting to become durable.
        self._sync_task: Optional[asyncio.Task] = None
        #: Live connections, so stop() can close them instead of
        #: letting loop teardown cancel mid-read tasks (which asyncio
        #: 3.11 logs noisily).
        self._writers: set = set()
        self._conn_tasks: set = set()
        #: Per-verb latency histograms, WAL append/fsync timings, reply
        #: bytes, and error-class counters (see :mod:`repro.obs`).
        self.metrics = MetricsRegistry(enabled=telemetry)
        #: Recent-span ring + slow-op JSONL appender.
        self.spans = SpanRecorder(shard_index,
                                  slow_op_threshold=slow_op_threshold,
                                  slow_op_path=slow_op_path)
        #: Interned ``verb.<kind>`` series names (one per verb ever
        #: served — avoids an f-string allocation per op).
        self._verb_series: Dict[str, str] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the worker's TCP endpoint and begin accepting
        connections (``port=0`` picks a free port; read it back from
        :attr:`port`).  Raises ``RuntimeProtocolError`` if already
        started."""
        if self._server is not None:
            raise RuntimeProtocolError("shard worker already started")
        self._server = await asyncio.start_server(self._on_connect,
                                                  host, port)

    @property
    def port(self) -> int:
        """The bound TCP port (raises ``RuntimeProtocolError`` before
        :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeProtocolError("shard worker is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener, drain live connections, and flush/close
        the op log — the graceful-shutdown path (a clean stop is
        replay-free)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close surviving connections and let their handler tasks exit
        # through the clean-EOF path before the loop tears down.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        # Graceful shutdown flushes and closes the op log: no dangling
        # fd, no unsynced tail — a clean stop is replay-free.
        if self.wal is not None and not self.wal.closed:
            try:
                self.wal.close()
            except DatabaseError:  # pragma: no cover - disk failure
                logger.exception("shard %d: wal close failed",
                                 self.shard_index)
        self.spans.close()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` verb arrives, then stop."""
        await self._shutdown.wait()
        await self.stop()

    async def __aenter__(self) -> "ShardWorker":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        task = asyncio.current_task()
        self._writers.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except asyncio.IncompleteReadError:
                    break  # clean disconnect
                # The verb clock starts here, before the injected
                # brownout delay and the group-commit wait — so a
                # DelayInjector on `match` shows up in *this shard's*
                # match histogram, which is the whole point of
                # server-side attribution.
                t0 = time.perf_counter()
                delay = faults.delay_for(str(frame.get("kind")))
                if delay > 0:
                    # Brownout injection: the slow-worker scenario arms
                    # per-verb delays to measure fan-out head-of-line
                    # blocking.  The sleep yields, so other connections
                    # to this worker are delayed only by their own ops.
                    await asyncio.sleep(delay)
                response = self._dispatch(frame)
                response = await self._commit_wal(frame, response)
                reply_bytes = await self._send_reply(writer, response)
                if self.metrics.enabled:
                    self._observe_op(frame, response,
                                     time.perf_counter() - t0, reply_bytes)
                if frame.get("kind") == "shutdown":
                    self._shutdown.set()
                    break
        except RuntimeProtocolError as exc:
            logger.warning("shard %d: protocol error from %s: %s",
                           self.shard_index, peer, exc)
            try:
                await write_frame(writer, {
                    "kind": "error", "error": "RuntimeProtocolError",
                    "message": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    # -- durability plumbing ---------------------------------------------------

    async def _commit_wal(self, frame: Dict[str, Any],
                          response: Dict[str, Any]) -> Dict[str, Any]:
        """Group-commit barrier: in ``fsync`` mode, an acknowledged
        mutation is a durable mutation.

        Only the op's own reply waits — read verbs and error replies
        pass straight through.  Concurrent committers share one sync:
        the first waiter schedules the sync task (optionally delayed by
        the group-commit interval so more appends pile into the same
        ``fdatasync``); everyone whose LSN it covers awaits the same
        task.  A sync failure turns the success reply into an error
        frame — the client must never believe an op is durable when the
        disk said no.
        """
        wal = self.wal
        if (wal is None or wal.mode != "fsync"
                or response.get("kind") == "error"
                or frame.get("kind") not in MUTATING_VERBS):
            return response
        target = wal.last_lsn
        try:
            while wal.synced_lsn < target:
                if self._sync_task is None:
                    self._sync_task = asyncio.ensure_future(self._run_sync())
                await self._sync_task
        except DatabaseError as exc:
            return {"kind": "error", "error": "DatabaseError",
                    "message": f"wal sync failed: {exc}"}
        return response

    async def _run_sync(self) -> None:
        try:
            if self.wal.group_commit_interval > 0:
                await asyncio.sleep(self.wal.group_commit_interval)
            else:
                # One trip through the event loop: handlers already
                # scheduled in this batch append before the sync runs.
                await asyncio.sleep(0)
            t0 = time.perf_counter()
            self.wal.sync()
            self.metrics.observe("wal.fsync", time.perf_counter() - t0)
        finally:
            self._sync_task = None

    async def _send_reply(self, writer: asyncio.StreamWriter,
                          response: Dict[str, Any]) -> int:
        # Encode once (write_frame would encode again) so the reply's
        # wire size feeds the reply_bytes counter for free.
        data = encode_message(response)
        # The `fault` verb's own acknowledgement is immune: its reply is
        # the first one sent after arming, so without this exemption a
        # reply.mid_frame trigger could never survive to a real op.
        if "armed" not in response and \
                faults.should_fire("reply.mid_frame"):  # pragma: no cover
            # Torn-reply scenario: half the frame reaches the client,
            # then the process dies.  The client must fail closed.
            writer.write(data[:max(1, len(data) // 2)])
            await writer.drain()
            faults.die()
        writer.write(data)
        await writer.drain()
        return len(data)

    def _observe_op(self, frame: Dict[str, Any], response: Dict[str, Any],
                    duration_s: float, reply_bytes: int) -> None:
        """Fold one completed op into the registry and the span ring."""
        kind = str(frame.get("kind"))
        error = response.get("error") \
            if response.get("kind") == "error" else None
        # Series names are interned per verb — this runs once per
        # served op, and a fresh f-string per op is measurable churn.
        series = self._verb_series.get(kind)
        if series is None:
            series = self._verb_series.setdefault(kind, "verb." + kind)
        self.metrics.observe_op(series, duration_s, reply_bytes)
        if error is not None:
            self.metrics.inc(f"errors.{error}")
        trace = frame.get("trace")
        self.spans.record(kind, duration_s,
                          trace=str(trace) if trace is not None else None,
                          error=error)

    # -- dispatch --------------------------------------------------------------

    def _stale_routing(self, message: str) -> Dict[str, Any]:
        """An error frame that carries the worker's routing table (when
        known) so the refused client can refresh in one round trip."""
        reply: Dict[str, Any] = {"kind": "error",
                                 "error": "StaleRoutingError",
                                 "message": message}
        if self.routing is not None:
            reply["routing"] = self.routing
        return reply

    def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self.requests += 1
        kind = frame.get("kind")
        handler = getattr(self, f"_verb_{kind}", None)
        if handler is None:
            return {"kind": "error", "error": "RuntimeProtocolError",
                    "message": f"unknown shard verb {kind!r}"}
        if self.retired and kind not in _RETIRED_VERBS:
            return self._stale_routing(
                f"shard {self.shard_index} (epoch {self.epoch}) is "
                "retired: its records migrated to a newer fleet")
        if "epoch" in frame and kind not in _RETIRED_VERBS:
            try:
                frame_epoch = int(frame["epoch"])
            except (TypeError, ValueError):
                return {"kind": "error", "error": "RuntimeProtocolError",
                        "message": f"malformed epoch {frame['epoch']!r}"}
            if frame_epoch != self.epoch:
                return self._stale_routing(
                    f"op stamped epoch {frame_epoch}, worker serves "
                    f"epoch {self.epoch}")
        try:
            response = handler(frame)
        except ReproError as exc:
            return {"kind": "error", "error": type(exc).__name__,
                    "message": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"kind": "error", "error": "RuntimeProtocolError",
                    "message": f"malformed {kind!r} request: {exc}"}
        if self.wal is not None and kind in MUTATING_VERBS:
            # Apply-then-log: the handler validated and applied the op,
            # so the log records only mutations that really happened.
            # The reply has not been sent yet — a crash in this window
            # loses an *unacknowledged* op, which is crash-exact.
            try:
                t0 = time.perf_counter()
                self.wal.append(frame)
                self.metrics.observe("wal.append",
                                     time.perf_counter() - t0)
            except DatabaseError as exc:
                logger.error("shard %d: %s", self.shard_index, exc)
                return {"kind": "error", "error": "DatabaseError",
                        "message": str(exc)}
        return response

    def replay(self, entries: Any, watermark: int = 0) -> int:
        """Apply recovered WAL entries past the snapshot watermark.

        ``entries`` is :attr:`WalRecoveryResult.entries` (``(lsn,
        frame)`` pairs in append order).  Only mutating verbs are
        legal, and every one must apply cleanly — the log records ops
        that *succeeded* against exactly this state, so a failure means
        the snapshot/log pair is inconsistent and recovery must stop
        loudly rather than continue from a diverged registry.  Returns
        the number of ops applied.
        """
        applied = 0
        for lsn, frame in entries:
            if lsn <= watermark:
                continue
            kind = frame.get("kind")
            if kind not in MUTATING_VERBS:
                raise DatabaseError(
                    f"wal replay: non-mutating verb {kind!r} at lsn {lsn}")
            handler = getattr(self, f"_verb_{kind}")
            try:
                handler(frame)
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                raise DatabaseError(
                    f"wal replay diverged at lsn {lsn} ({kind}): "
                    f"{exc}") from exc
            applied += 1
        return applied

    def _check_routing(self, name: str) -> None:
        if self.shards > 1 and shard_of(name, self.shards) != self.shard_index:
            raise DatabaseError(
                f"record {name!r} routes to shard "
                f"{shard_of(name, self.shards)}, not {self.shard_index}")

    # -- registry CRUD ---------------------------------------------------------

    def _verb_register(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Add a machine record (point op; WAL-logged, epoch-checked).

        Args (frame fields): ``row`` — the v3 positional record row.
        Returns: ``{"kind": "ok"}``.
        Raises: ``DuplicateMachineError``; ``DatabaseError`` when the
            name CRC-routes to a different shard (misroute guard).
        """
        record = MachineRecord.from_row(frame["row"])
        self._check_routing(record.machine_name)
        self.database.add(record)
        return {"kind": "ok"}

    def _verb_remove(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Remove a machine by name (point op; WAL-logged,
        epoch-checked).

        Args (frame fields): ``name``.
        Returns: ``{"kind": "record", "row"}`` — the removed record.
        Raises: ``UnknownMachineError``.
        """
        record = self.database.remove(str(frame["name"]))
        return {"kind": "record", "row": record.to_row()}

    def _verb_get(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Fetch one record by name (point read; epoch-checked).

        Args (frame fields): ``name``.
        Returns: ``{"kind": "record", "row"}``.
        Raises: ``UnknownMachineError``.
        """
        record = self.database.get(str(frame["name"]))
        return {"kind": "record", "row": record.to_row()}

    def _verb_update(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Replace a record wholesale (point op; WAL-logged,
        epoch-checked, misroute-guarded like ``register``).

        Args (frame fields): ``row``.
        Returns: ``{"kind": "ok"}``.
        Raises: ``UnknownMachineError``; ``DatabaseError`` on misroute.
        """
        record = MachineRecord.from_row(frame["row"])
        self._check_routing(record.machine_name)
        self.database.update(record)
        return {"kind": "ok"}

    def _verb_update_dynamic(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Update a record's dynamic fields (point op; WAL-logged,
        epoch-checked).

        Args (frame fields): ``name``; ``dynamic`` — the
        :func:`encode_dynamic` wire map.
        Returns: ``{"kind": "record", "row"}`` — the updated record.
        Raises: ``UnknownMachineError``.
        """
        dynamic = decode_dynamic(dict(frame.get("dynamic", {})))
        record = self.database.update_dynamic(str(frame["name"]), **dynamic)
        return {"kind": "record", "row": record.to_row()}

    # -- matching --------------------------------------------------------------

    def _verb_match(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Run a query against this shard (fan-out read; the client
        merges per-shard name-ordered results, so no epoch stamp — a
        retired worker refuses it instead).

        Args (frame fields): ``clauses`` (wire clause list or null for
        match-all); ``include_taken``; ``names_only``.
        Returns: ``{"kind": "records", "rows"}`` in name order, or
        ``{"kind": "names"}`` with ``names_only``.
        """
        clauses = clauses_from_wire(frame.get("clauses"))
        include_taken = bool(frame.get("include_taken", False))
        matches = self.database.match(clauses, include_taken=include_taken)
        if frame.get("names_only"):
            return {"kind": "names",
                    "names": [r.machine_name for r in matches]}
        return {"kind": "records", "rows": [r.to_row() for r in matches]}

    def _verb_count(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Count query matches on this shard (fan-out read; the client
        sums the per-shard counts).

        Args (frame fields): ``clauses``; ``include_taken``.
        Returns: ``{"kind": "count", "count"}``.
        """
        clauses = clauses_from_wire(frame.get("clauses"))
        return {"kind": "count", "count": self.database.count(
            clauses, include_taken=bool(frame.get("include_taken", False)))}

    def _verb_names(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """All machine names on this shard, name-ordered (fan-out
        read; merged client-side).  Returns ``{"kind": "names"}``."""
        return {"kind": "names", "names": self.database.names()}

    def _verb_scan(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Every record on this shard in name order (fan-out read).

        Args (frame fields): ``include_taken``.
        Returns: ``{"kind": "records", "rows"}``.
        """
        records = self.database.scan(
            None, include_taken=bool(frame.get("include_taken", False)))
        return {"kind": "records", "rows": [r.to_row() for r in records]}

    def _verb_count_up(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Count of machines in the ``up`` state on this shard (fan-out
        read).  Returns ``{"kind": "count"}``."""
        return {"kind": "count", "count": self.database.count_up()}

    def _verb_len(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Total records on this shard (fan-out read).  Returns
        ``{"kind": "count"}``."""
        return {"kind": "count", "count": len(self.database)}

    def _verb_contains(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Membership test for one name (point read; epoch-checked).

        Args (frame fields): ``name``.
        Returns: ``{"kind": "ok", "contains": bool}``.
        """
        return {"kind": "ok",
                "contains": str(frame["name"]) in self.database}

    # -- take / release --------------------------------------------------------

    def _verb_take(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Mark a machine taken by a pool (point op; WAL-logged,
        epoch-checked).  A losing race returns ``taken=false`` rather
        than raising — and is still logged, so replay reproduces the
        same no-op.

        Args (frame fields): ``name``; ``pool``.
        Returns: ``{"kind": "ok", "taken": bool}``.
        Raises: ``UnknownMachineError``.
        """
        taken = self.database.take(str(frame["name"]), str(frame["pool"]))
        return {"kind": "ok", "taken": taken}

    def _verb_take_all(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Take every still-free machine of a list (bulk point op;
        WAL-logged, epoch-checked; the client pre-routes the names so
        each shard sees only its own).

        Args (frame fields): ``names``; ``pool``.
        Returns: ``{"kind": "names", "names"}`` — the subset actually
        taken.
        """
        got = self.database.take_all(
            [str(n) for n in frame.get("names", [])], str(frame["pool"]))
        return {"kind": "names", "names": got}

    def _verb_release(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Release one machine from a pool (point op; WAL-logged,
        epoch-checked).

        Args (frame fields): ``name``; ``pool``.
        Returns: ``{"kind": "ok"}``.
        Raises: ``UnknownMachineError``; ``MachineTakenError`` when a
            different pool holds it.
        """
        self.database.release(str(frame["name"]), str(frame["pool"]))
        return {"kind": "ok"}

    def _verb_release_pool(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Release every machine a pool holds on this shard (fan-out
        mutation; WAL-logged; the client sums the per-shard counts).

        Args (frame fields):
            ``pool``: the releasing pool's name.
            ``only_from``: optional ``[old_shards, source_index]`` pair
            — release only machines that the *old* partition routed to
            ``source_index``.  A live reshard replays each source
            shard's ``release_pool`` copy scoped this way: each
            record's op history is totally ordered by its old owner's
            log, so an unscoped replay of another source's copy could
            release a machine re-taken later in its own log.

        Returns: ``{"kind": "count", "count"}`` released here.
        """
        pool = str(frame["pool"])
        only_from = frame.get("only_from")
        if only_from is None:
            return {"kind": "count",
                    "count": self.database.release_pool(pool)}
        old_shards, source_index = int(only_from[0]), int(only_from[1])
        count = 0
        for name in self.database.names():
            if shard_of(name, old_shards) != source_index:
                continue
            if self.database.holder_of(name) == pool:
                self.database.release(name, pool)
                count += 1
        return {"kind": "count", "count": count}

    def _verb_holder_of(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """The pool currently holding a machine (point read;
        epoch-checked).

        Args (frame fields): ``name``.
        Returns: ``{"kind": "holder", "holder": name-or-null}``.
        Raises: ``UnknownMachineError``.
        """
        return {"kind": "holder",
                "holder": self.database.holder_of(str(frame["name"]))}

    def _verb_taken_count(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """How many machines on this shard are taken (fan-out read).
        Returns ``{"kind": "count"}``."""
        return {"kind": "count", "count": self.database.taken_count()}

    def _verb_free_names(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Names of free (not-taken) machines on this shard (fan-out
        read).  Returns ``{"kind": "names"}``, unsorted by contract:
        the client unions the per-shard sets, so ordering here is
        wasted work."""
        return {"kind": "names",
                "names": list(self.database.free_names())}

    # -- observability / persistence / lifecycle -------------------------------

    def _verb_health(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Liveness/observability probe (served even when retired).

        Returns: ``{"kind": "health"}`` with pid, shard geometry,
        routing ``epoch`` and ``retired`` flag, record/request counts,
        index stats, WAL stats (``{"mode": "off"}`` without a log),
        and armed brownout delays.
        """
        return {
            "kind": "health",
            "pid": os.getpid(),
            "shard_index": self.shard_index,
            "shards": self.shards,
            "epoch": self.epoch,
            "retired": self.retired,
            "machines": len(self.database),
            "requests": self.requests,
            "uptime_s": time.monotonic() - self.started_at,
            "index_stats": self.database.index_stats(),
            "wal": (self.wal.stats() if self.wal is not None
                    else {"mode": "off"}),
            "delays": (faults.installed_delays().delays
                       if faults.installed_delays() is not None else {}),
        }

    def _verb_metrics(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Telemetry snapshot: registry series, span tail, fault counts
        (served even when retired, so fleet sweeps stay complete).

        Args (frame fields): ``max_spans`` — how many recent spans to
        return (default 32, 0 for none).
        Returns: ``{"kind": "metrics"}`` with shard geometry, the
        :class:`~repro.obs.telemetry.MetricsRegistry` snapshot
        (``counters``/``gauges``/``histograms`` — per-verb latency,
        WAL append/fsync, reply bytes, error classes), the recent-span
        ``spans`` tail, ``slow_ops`` count + ``slow_op_path`` +
        ``slow_op_threshold``, WAL stats, and a ``faults`` block
        (armed/fired brownout delays per verb, crash-point hit counts)
        so a scenario can assert its injection landed where intended.
        """
        delays = faults.installed_delays()
        injector = faults.installed()
        return {
            "kind": "metrics",
            "shard_index": self.shard_index,
            "shards": self.shards,
            "epoch": self.epoch,
            "retired": self.retired,
            "machines": len(self.database),
            "requests": self.requests,
            "uptime_s": time.monotonic() - self.started_at,
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.tail(int(frame.get("max_spans", 32))),
            "slow_ops": self.spans.slow_ops,
            "slow_op_path": self.spans.slow_op_path,
            "slow_op_threshold": self.spans.slow_op_threshold,
            "wal": (self.wal.stats() if self.wal is not None
                    else {"mode": "off"}),
            "faults": {
                "delays_armed": (delays.delays
                                 if delays is not None else {}),
                "delays_fired": (delays.fired
                                 if delays is not None else {}),
                "crash_hits": (injector.hit_counts()
                               if injector is not None else {}),
            },
        }

    def _verb_set_telemetry(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Flip per-op telemetry recording at runtime.

        Args (frame fields): ``enabled`` — bool.
        Returns: ``{"kind": "set_telemetry", "enabled": <now>}``.

        Already-recorded series are kept (re-enabling resumes the same
        histograms).  The overhead scale gate uses this to A/B-time a
        *single* live fleet — two separate fleets never share process
        placement, so their baseline difference can exceed the
        telemetry tax being measured.
        """
        self.metrics.enabled = bool(frame["enabled"])
        return {"kind": "set_telemetry", "enabled": self.metrics.enabled}

    def _verb_fault(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Arm (or with empty maps, disarm) fault injection in this
        worker — the wire face of the fault-injection harness.

        ``triggers`` are crash-point countdowns (SIGKILL on expiry);
        ``delays`` are per-verb brownout latencies in seconds (the
        slow-worker scenario's knob).  An unknown crash-point or verb
        name is a malformed request, so a typo'd test arms nothing
        silently.  Each map is independent: a frame carrying only
        ``delays`` leaves armed crash triggers alone, and vice versa;
        an *empty* map present in the frame explicitly disarms that
        family.
        """
        armed: List[str] = []
        if "triggers" in frame or "delays" not in frame:
            triggers = {str(point): int(count)
                        for point, count in dict(
                            frame.get("triggers", {})).items()}
            faults.install(
                faults.FaultInjector(triggers) if triggers else None)
            armed.extend(sorted(triggers))
        if "delays" in frame:
            delays = {str(verb): float(seconds)
                      for verb, seconds in dict(frame["delays"]).items()}
            faults.install_delays(
                faults.DelayInjector(delays, known_verbs=self.verbs())
                if delays else None)
            armed.extend(sorted(f"delay:{v}" for v in delays))
        return {"kind": "ok", "armed": armed}

    @classmethod
    def verbs(cls) -> List[str]:
        """The worker's verb vocabulary (the ``_verb_*`` table)."""
        return sorted(name[len("_verb_"):] for name in dir(cls)
                      if name.startswith("_verb_"))

    def _verb_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Write (or return) a v3 (or path-backed v4) snapshot of the
        live shard.

        With a ``path`` the text stays worker-side — the supervisor's
        checkpoint of a 100 MB shard costs one small reply, not a bulk
        transfer; without one the text rides back inline on
        continuation frames.  ``version=4`` needs a ``path`` (its
        binary column sidecar lands next to the snapshot file and
        cannot ride an inline text reply).

        With a write-ahead log attached, the snapshot embeds
        :attr:`~repro.database.wal.WriteAheadLog.last_lsn` as its
        watermark (dispatch is single-threaded, so every applied op has
        been appended by the time this verb runs) and a *path-backed*
        snapshot — a checkpoint that durably landed worker-side —
        truncates the log afterwards.  An inline-text snapshot leaves
        the log alone: the worker cannot know whether the caller ever
        persisted the reply.
        """
        from repro.database.persistence import (
            atomic_write_text,
            dumps_database,
            save_database,
        )
        version = int(frame.get("version", 3))
        path = frame.get("path")
        watermark = self.wal.last_lsn if self.wal is not None else None
        if version == 4 and path:
            try:
                save_database(self.database, path, version=4,
                              wal_lsn=watermark)
                with open(path, "rb") as fh:
                    crc = zlib.crc32(fh.read())
            except OSError as exc:
                raise DatabaseError(
                    f"snapshot write to {path!r} failed: {exc}") from exc
            self._truncate_wal()
            return {"kind": "snapshot", "crc": crc,
                    "machines": len(self.database), "version": version,
                    "path": str(path)}
        text = dumps_database(self.database, version=version,
                              wal_lsn=watermark)
        crc = zlib.crc32(text.encode("utf-8"))
        reply = {"kind": "snapshot", "crc": crc,
                 "machines": len(self.database), "version": version}
        if path:
            try:
                atomic_write_text(path, text)
            except OSError as exc:
                # Surface filesystem failures (deleted snapshot dir,
                # disk full) as an error frame, not a dead connection.
                raise DatabaseError(
                    f"snapshot write to {path!r} failed: {exc}") from exc
            self._truncate_wal()
            reply["path"] = str(path)
        else:
            reply["text"] = text
        return reply

    def _truncate_wal(self) -> None:
        """Drop the op log after a checkpoint durably landed.

        Best-effort: the snapshot's embedded watermark already makes
        every record it covers a replay no-op, so a failed truncation
        costs disk space and replay time, never correctness.
        """
        if self.wal is None or self.wal.closed:
            return
        if self._wal_pinned:
            # A live migration is streaming this log's tail; dropping
            # records now would lose ops the target has not replayed.
            # The watermark makes deferral safe (covered records replay
            # as no-ops), so truncation simply waits for cutover.
            logger.info("shard %d: wal truncate deferred (migration "
                        "in progress)", self.shard_index)
            return
        try:
            self.wal.truncate()
        except DatabaseError:  # pragma: no cover - disk failure
            logger.exception("shard %d: wal truncate after checkpoint "
                             "failed", self.shard_index)

    # -- live migration --------------------------------------------------------

    def _verb_routing(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Report this worker's routing view.

        Returns:
            ``{"kind": "routing", "epoch", "shards", "retired",
            "routing"}`` — ``routing`` is the full table wire dict once
            a cutover published one, else ``None``.  Clients use this
            to refresh after a :class:`~repro.errors.StaleRoutingError`
            whose frame carried no table yet (mid-cutover window).
        """
        return {"kind": "routing", "epoch": self.epoch,
                "shards": self.shards, "retired": self.retired,
                "routing": self.routing}

    def _verb_migrate_begin(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Snapshot this shard for migration, *without* truncating the
        op log.

        Args (frame fields):
            ``path``: where the worker writes the v3 snapshot
            (worker-side, like a checkpoint).

        Returns:
            ``{"kind": "snapshot", "path", "machines", "watermark"}`` —
            ``watermark`` is the log LSN the snapshot embeds; the
            migrator streams entries *after* it with ``migrate_tail``.

        Raises:
            DatabaseError: when this worker has no write-ahead log
                (live migration needs the tail) or the write fails.

        Unlike ``snapshot``, the log is left intact **and pinned**:
        checkpoints racing the migration defer their truncation until
        ``migrate_cutover`` unpins, so the tail stays streamable.
        """
        if self.wal is None:
            raise DatabaseError(
                f"shard {self.shard_index}: live migration needs a "
                "write-ahead log (wal mode is 'off')")
        from repro.database.persistence import save_database
        path = str(frame["path"])
        watermark = self.wal.last_lsn
        try:
            save_database(self.database, path, version=3,
                          wal_lsn=watermark)
        except OSError as exc:
            raise DatabaseError(
                f"migration snapshot write to {path!r} failed: "
                f"{exc}") from exc
        self._wal_pinned = True
        return {"kind": "snapshot", "path": path,
                "machines": len(self.database), "watermark": watermark}

    def _verb_migrate_tail(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Stream a bounded slice of this shard's op-log tail.

        Args (frame fields):
            ``after_lsn``: return only entries with a higher LSN (the
            migration watermark, then the last LSN already replayed).
            ``max_records``: cap per reply (default 512).

        Returns:
            ``{"kind": "tail", "entries": [[lsn, frame], ...],
            "wal_lsn": <last LSN the worker acknowledged>, "reason"}``.
            The stream is drained when the last returned (or requested)
            LSN reaches ``wal_lsn``; a torn ``reason`` at the boundary
            means a concurrent append raced the read — poll again.

        Raises:
            DatabaseError: when this worker has no write-ahead log.

        Served even when retired: the post-fence drain uses it to hand
        over the final in-flight ops.
        """
        if self.wal is None:
            raise DatabaseError(
                f"shard {self.shard_index}: no write-ahead log to "
                "stream (wal mode is 'off')")
        from repro.database.wal import read_wal_tail
        after_lsn = int(frame.get("after_lsn", 0))
        max_records = int(frame.get("max_records", 512))
        tail = read_wal_tail(self.wal.path, after_lsn=after_lsn,
                             max_records=max_records)
        return {"kind": "tail",
                "entries": [[lsn, f] for lsn, f in tail.entries],
                "wal_lsn": self.wal.last_lsn,
                "reason": tail.reason}

    def _verb_migrate_cutover(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Flip this worker's role in a live reshard.

        Args (frame fields):
            ``retire``: ``true`` fences a source (refuse all ops except
            :data:`_RETIRED_VERBS` with ``StaleRoutingError`` from now
            on); ``false`` rolls a fence back (the migrator's abort
            path).
            ``epoch``: the new routing epoch to adopt (targets are
            spawned already carrying it; retired sources adopt it so
            their error frames name the current epoch).
            ``routing``: the full routing-table wire dict to publish to
            refused clients.  The migrator sends it to targets first,
            then to the fenced sources — so a client can never learn an
            endpoint that is not yet serving.

        Returns:
            ``{"kind": "ok", "epoch", "retired"}``.

        Unpins the op log (see ``migrate_begin``); a deferred
        checkpoint truncation becomes effective at the next checkpoint.
        """
        if "epoch" in frame:
            self.epoch = int(frame["epoch"])
        if frame.get("routing") is not None:
            self.routing = dict(frame["routing"])
        if "retire" in frame:
            self.retired = bool(frame["retire"])
        self._wal_pinned = False
        return {"kind": "ok", "epoch": self.epoch,
                "retired": self.retired}

    def _verb_reset(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Replace the live shard with a fresh database (optionally
        seeded from ``rows``) — test and re-seed tooling.

        Args (frame fields): ``rows`` — v3 record rows, pre-routed to
        this shard (misroutes are refused).
        Returns: ``{"kind": "ok", "machines"}``.
        WAL-logged like any mutation; a ``reset`` observed in a log
        tail aborts a live migration (it cannot be re-partitioned as a
        single-shard frame).
        """
        records = [MachineRecord.from_row(row)
                   for row in frame.get("rows", [])]
        for record in records:
            self._check_routing(record.machine_name)
        # The replacement keeps the old database's engine choice, so a
        # columnar worker stays columnar across a test re-seed.
        self.database = WhitePagesDatabase(records,
                                           columnar=self.database.columnar)
        return {"kind": "ok", "machines": len(records)}

    def _verb_shutdown(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Acknowledge, then stop the worker's server loop (graceful:
        connections drain, the WAL flushes and closes).  Served even
        when retired.  Returns ``{"kind": "ok"}``."""
        return {"kind": "ok"}


# ---------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------


def _load_shard_database(snapshot_path: Optional[str],
                         columnar: Optional[bool] = None):
    """(database, wal watermark) for a worker cold start."""
    if not snapshot_path or not os.path.exists(snapshot_path):
        return WhitePagesDatabase(columnar=bool(columnar)), 0
    from repro.database.persistence import loads_database, snapshot_wal_lsn
    with open(snapshot_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    # sidecar_dir mirrors load_database: a v4 per-shard snapshot then
    # mmap-attaches its column sidecar instead of rebuilding columns.
    database = loads_database(
        text, columnar=columnar,
        sidecar_dir=os.path.dirname(os.path.abspath(snapshot_path)))
    return database, snapshot_wal_lsn(text)


def run_shard_worker(shard_index: int, shards: int, host: str, port: int,
                     snapshot_path: Optional[str] = None,
                     ready_conn: Any = None,
                     columnar: Optional[bool] = None,
                     wal_mode: str = "off",
                     wal_path: Optional[str] = None,
                     wal_interval: float = 0.0,
                     epoch: int = 0,
                     telemetry: bool = True,
                     slow_op_threshold: float = 0.25,
                     slow_op_path: Optional[str] = None) -> None:
    """Process entry: own one shard, serve verbs until ``shutdown``.

    Builds the shard database (empty, or cold-started from a per-shard
    v3/v4 snapshot file), binds the TCP endpoint, reports the bound
    port through ``ready_conn`` (a :func:`multiprocessing.Pipe` end) so
    the supervisor can hand out real endpoints even when ``port=0``,
    then serves until a ``shutdown`` verb or SIGTERM.

    ``columnar`` is the persistence tri-state: ``None`` follows the
    snapshot version (v4 → columns on), ``True``/``False`` force the
    column kernel on or off for this worker.

    ``wal_mode``/``wal_path``/``wal_interval`` configure the write-ahead
    op log (:mod:`repro.database.wal`).  With a mode other than
    ``"off"``, startup is *crash-exact recovery*: load the snapshot,
    take its embedded LSN watermark, recover the log (physically
    truncating any torn tail), and replay the records past the
    watermark — so the served state is identical to the pre-crash state
    at the last acknowledged op.

    ``epoch`` is the routing epoch the worker serves (bumped by every
    live reshard; see the module docstring's epoch protocol).

    ``telemetry``/``slow_op_threshold``/``slow_op_path`` configure the
    worker's observability (:mod:`repro.obs`): per-verb histograms via
    the ``metrics`` verb, and a slow-op JSONL.  When no explicit
    ``slow_op_path`` is given but the worker has a WAL, the log lands
    beside it (``<wal stem>.slow.jsonl``).

    Importable and picklable, so it works under both the ``fork`` and
    ``spawn`` start methods (and as a CLI foreground process via
    ``repro shard-serve``).
    """
    # Crash-point countdowns can arrive by env (shard-scoped), so tests
    # can kill a worker *during recovery* — e.g. mid-checkpoint replay.
    faults.install_from_env(shard_index)
    database, watermark = _load_shard_database(snapshot_path, columnar)
    wal = None
    replayed = 0
    if wal_mode not in ("off", "async", "fsync"):
        raise ConfigError(
            f"wal mode must be off|async|fsync, got {wal_mode!r}")
    if wal_mode != "off":
        if not wal_path:
            raise ConfigError(f"wal mode {wal_mode!r} needs a wal path")
        wal, recovery = WriteAheadLog.open(
            wal_path, mode=wal_mode, group_commit_interval=wal_interval)
        # LSN continuity across checkpoints: a truncated (empty) log
        # recovers at LSN 0, but the snapshot's watermark is the true
        # high-water mark — new appends must count from there or the
        # *next* recovery would watermark-skip them.
        wal.last_lsn = max(wal.last_lsn, watermark)
        wal.synced_lsn = wal.last_lsn
        if recovery.discarded_bytes:
            logger.warning(
                "shard %d: wal %s: discarded %d-byte torn tail (%s)",
                shard_index, wal_path, recovery.discarded_bytes,
                recovery.reason)
    if slow_op_path is None and wal_path:
        slow_op_path = os.path.splitext(wal_path)[0] + ".slow.jsonl"
    worker = ShardWorker(database, shard_index=shard_index, shards=shards,
                         wal=wal, epoch=epoch, telemetry=telemetry,
                         slow_op_threshold=slow_op_threshold,
                         slow_op_path=slow_op_path)
    if wal is not None and recovery.entries:
        replayed = worker.replay(recovery.entries, watermark)
        if replayed:
            logger.info("shard %d: replayed %d wal op(s) past lsn %d",
                        shard_index, replayed, watermark)

    async def main() -> None:
        """Serve until a signal or ``shutdown`` verb stops the loop."""
        import signal
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                # Ctrl-C in foreground mode (or a supervisor's TERM)
                # becomes a graceful shutdown: connections drain, no
                # cancelled-task noise at loop teardown.
                loop.add_signal_handler(signum, worker._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break  # non-POSIX loop: fall back to KeyboardInterrupt
        await worker.start(host, port)
        # worker.database, not the load-time local: a replayed `reset`
        # op swaps in a fresh database object.
        if ready_conn is not None:
            ready_conn.send({"shard_index": shard_index,
                             "port": worker.port, "pid": os.getpid(),
                             "machines": len(worker.database),
                             "replayed": replayed})
            ready_conn.close()
        else:  # CLI foreground mode: print the endpoint for operators
            print(json.dumps({"shard_index": shard_index,
                              "port": worker.port,
                              "machines": len(worker.database),
                              "replayed": replayed}), flush=True)
        await worker.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        # Ctrl-C in foreground mode signals the whole process group;
        # the supervisor (or operator) is already tearing us down —
        # exit quietly instead of spraying one traceback per worker.
        pass
