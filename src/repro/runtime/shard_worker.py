"""Long-lived shard workers: live white-pages shards behind the wire.

PR 4's :class:`~repro.database.sharding.ParallelMatcher` buys multi-core
matching by forking point-in-time copies of the shards — every matcher
pays the fork + copy-on-write cost and discards all warm state when it
closes.  A :class:`ShardWorker` is the persistent alternative: one
process owns one **live** :class:`~repro.database.whitepages
.WhitePagesDatabase` shard — attribute indexes, subscription map, and
query-class caches stay warm across requests — and serves shard verbs
over the length-prefixed JSON frame protocol
(:mod:`repro.runtime.protocol`).  The client half
(:class:`~repro.database.service.ShardServiceClient`) routes point
operations by CRC-32 of the machine name and fans queries out across
workers, so the whole service presents the duck-typed ``WhitePages``
surface out-of-process.

Verb table (request ``kind`` → reply ``kind``)
----------------------------------------------
=================  =========================  ==============================
verb               request fields             reply
=================  =========================  ==============================
``register``       ``row``                    ``ok``
``remove``         ``name``                   ``record`` (the removed row)
``get``            ``name``                   ``record``
``update``         ``row``                    ``ok``
``update_dynamic`` ``name``, ``dynamic``      ``record`` (the new row)
``match``          ``clauses``,               ``records`` (rows) or
                   ``include_taken``,         ``names``
                   ``names_only``
``count``          ``clauses``,               ``count``
                   ``include_taken``
``names``          —                          ``names``
``scan``           ``include_taken``          ``records`` (rows, name order)
``take``           ``name``, ``pool``         ``ok`` with ``taken`` bool
``take_all``       ``names``, ``pool``        ``names`` (actually taken)
``release``        ``name``, ``pool``         ``ok``
``release_pool``   ``pool``                   ``count``
``holder_of``      ``name``                   ``holder`` (name or null)
``taken_count``    —                          ``count``
``free_names``     —                          ``names`` (unsorted)
``count_up``       —                          ``count``
``len``            —                          ``count``
``contains``       ``name``                   ``ok`` with ``contains`` bool
``snapshot``       ``path`` (optional),       ``snapshot`` (``crc``,
                   ``version``                ``machines``; ``text`` inline
                                              when no path given)
``health``         —                          ``health`` (pid, shard index,
                                              machines, requests, ...)
``reset``          ``rows`` (optional)        ``ok`` (fresh database)
``shutdown``       —                          ``ok``, then the server stops
=================  =========================  ==============================

Database errors cross the wire as ``{"kind": "error", "error":
"<exception class>", "message": ...}``; the client re-raises the named
:mod:`repro.errors` class, so remote error paths are type-identical to
the in-process ones.  Records travel as compact v3 rows
(:data:`~repro.database.records.RECORD_ROW_FIELDS`), queries as the
clause encoding of :mod:`repro.runtime.wire`.  Replies larger than one
frame (bulk matches, inline snapshots) ride the protocol's continuation
frames.

A worker validates routing on every ``register``: a record whose name
CRC-routes to a different shard is refused, so a mis-configured client
cannot silently split the name space.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import time
import zlib
from typing import Any, Dict, List, Optional

from repro.database.records import (
    MachineRecord,
    _FLAGS_BY_BITS,
    _STATE_BY_VALUE,
)
from repro.database.sharding import shard_of
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import DatabaseError, ReproError, RuntimeProtocolError
from repro.runtime.protocol import read_frame, write_frame
from repro.runtime.wire import clause_from_dict, clause_to_dict

__all__ = [
    "ShardWorker",
    "run_shard_worker",
    "encode_dynamic",
    "decode_dynamic",
    "clauses_to_wire",
    "clauses_from_wire",
]

logger = logging.getLogger(__name__)

#: Dynamic fields (1-7) that need a codec beyond JSON's native types.
_STATE_KEY = "state"
_FLAGS_KEY = "service_status_flags"


def encode_dynamic(dynamic: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe encoding of ``update_dynamic`` kwargs (state → value
    string, service flags → bit mask; numbers pass through)."""
    out: Dict[str, Any] = {}
    for key, value in dynamic.items():
        if key == _STATE_KEY and value is not None:
            out[key] = str(value)
        elif key == _FLAGS_KEY and value is not None:
            out[key] = ((1 if value.execution_unit_up else 0)
                        | (2 if value.pvfs_manager_up else 0)
                        | (4 if value.proxy_server_up else 0))
        else:
            out[key] = value
    return out


def decode_dynamic(dynamic: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in dynamic.items():
        if key == _STATE_KEY and value is not None:
            out[key] = _STATE_BY_VALUE[value]
        elif key == _FLAGS_KEY and value is not None:
            out[key] = _FLAGS_BY_BITS[int(value)]
        else:
            out[key] = value
    return out


def clauses_to_wire(plan: Any) -> Optional[List[Dict[str, Any]]]:
    """Normalise any ``match()`` plan argument to a wire clause list.

    ``None`` (match-all) stays ``None``; a compiled plan contributes its
    clause set, so compilation on the worker side reproduces the exact
    plan the caller held.
    """
    from repro.core.plan import ClauseSet, QueryPlan
    from repro.core.query import Query
    if plan is None:
        return None
    if isinstance(plan, QueryPlan):
        clause_set = plan.clause_set
    elif isinstance(plan, ClauseSet):
        clause_set = plan
    elif isinstance(plan, Query):
        clause_set = ClauseSet.from_query(plan)
    else:  # raw clause iterable
        clause_set = ClauseSet.from_clauses(plan)
    return [clause_to_dict(c) for c in clause_set.clauses]


def clauses_from_wire(data: Optional[List[Dict[str, Any]]]) -> Any:
    if data is None:
        return None
    return [clause_from_dict(c) for c in data]


class ShardWorker:
    """One live shard behind a TCP endpoint.

    Parameters
    ----------
    database:
        The shard's live :class:`WhitePagesDatabase` (indexes and caches
        stay warm for the worker's lifetime).
    shard_index, shards:
        This worker's slot in the N-shard layout; ``register`` refuses
        records that :func:`~repro.database.sharding.shard_of` routes
        elsewhere.  ``shards=1`` accepts every name.
    """

    def __init__(self, database: Optional[WhitePagesDatabase] = None, *,
                 shard_index: int = 0, shards: int = 1):
        if not 0 <= shard_index < shards:
            raise DatabaseError(
                f"shard index {shard_index} outside 0..{shards - 1}")
        self.database = database if database is not None \
            else WhitePagesDatabase()
        self.shard_index = shard_index
        self.shards = shards
        self.requests = 0
        self.started_at = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        #: Live connections, so stop() can close them instead of
        #: letting loop teardown cancel mid-read tasks (which asyncio
        #: 3.11 logs noisily).
        self._writers: set = set()
        self._conn_tasks: set = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        if self._server is not None:
            raise RuntimeProtocolError("shard worker already started")
        self._server = await asyncio.start_server(self._on_connect,
                                                  host, port)

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeProtocolError("shard worker is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close surviving connections and let their handler tasks exit
        # through the clean-EOF path before the loop tears down.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` verb arrives, then stop."""
        await self._shutdown.wait()
        await self.stop()

    async def __aenter__(self) -> "ShardWorker":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        task = asyncio.current_task()
        self._writers.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except asyncio.IncompleteReadError:
                    break  # clean disconnect
                response = self._dispatch(frame)
                await write_frame(writer, response)
                if frame.get("kind") == "shutdown":
                    self._shutdown.set()
                    break
        except RuntimeProtocolError as exc:
            logger.warning("shard %d: protocol error from %s: %s",
                           self.shard_index, peer, exc)
            try:
                await write_frame(writer, {
                    "kind": "error", "error": "RuntimeProtocolError",
                    "message": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self.requests += 1
        kind = frame.get("kind")
        handler = getattr(self, f"_verb_{kind}", None)
        if handler is None:
            return {"kind": "error", "error": "RuntimeProtocolError",
                    "message": f"unknown shard verb {kind!r}"}
        try:
            return handler(frame)
        except ReproError as exc:
            return {"kind": "error", "error": type(exc).__name__,
                    "message": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"kind": "error", "error": "RuntimeProtocolError",
                    "message": f"malformed {kind!r} request: {exc}"}

    def _check_routing(self, name: str) -> None:
        if self.shards > 1 and shard_of(name, self.shards) != self.shard_index:
            raise DatabaseError(
                f"record {name!r} routes to shard "
                f"{shard_of(name, self.shards)}, not {self.shard_index}")

    # -- registry CRUD ---------------------------------------------------------

    def _verb_register(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        record = MachineRecord.from_row(frame["row"])
        self._check_routing(record.machine_name)
        self.database.add(record)
        return {"kind": "ok"}

    def _verb_remove(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        record = self.database.remove(str(frame["name"]))
        return {"kind": "record", "row": record.to_row()}

    def _verb_get(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        record = self.database.get(str(frame["name"]))
        return {"kind": "record", "row": record.to_row()}

    def _verb_update(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        record = MachineRecord.from_row(frame["row"])
        self._check_routing(record.machine_name)
        self.database.update(record)
        return {"kind": "ok"}

    def _verb_update_dynamic(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        dynamic = decode_dynamic(dict(frame.get("dynamic", {})))
        record = self.database.update_dynamic(str(frame["name"]), **dynamic)
        return {"kind": "record", "row": record.to_row()}

    # -- matching --------------------------------------------------------------

    def _verb_match(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        clauses = clauses_from_wire(frame.get("clauses"))
        include_taken = bool(frame.get("include_taken", False))
        matches = self.database.match(clauses, include_taken=include_taken)
        if frame.get("names_only"):
            return {"kind": "names",
                    "names": [r.machine_name for r in matches]}
        return {"kind": "records", "rows": [r.to_row() for r in matches]}

    def _verb_count(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        clauses = clauses_from_wire(frame.get("clauses"))
        return {"kind": "count", "count": self.database.count(
            clauses, include_taken=bool(frame.get("include_taken", False)))}

    def _verb_names(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "names", "names": self.database.names()}

    def _verb_scan(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        records = self.database.scan(
            None, include_taken=bool(frame.get("include_taken", False)))
        return {"kind": "records", "rows": [r.to_row() for r in records]}

    def _verb_count_up(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "count", "count": self.database.count_up()}

    def _verb_len(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "count", "count": len(self.database)}

    def _verb_contains(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "ok",
                "contains": str(frame["name"]) in self.database}

    # -- take / release --------------------------------------------------------

    def _verb_take(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        taken = self.database.take(str(frame["name"]), str(frame["pool"]))
        return {"kind": "ok", "taken": taken}

    def _verb_take_all(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        got = self.database.take_all(
            [str(n) for n in frame.get("names", [])], str(frame["pool"]))
        return {"kind": "names", "names": got}

    def _verb_release(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self.database.release(str(frame["name"]), str(frame["pool"]))
        return {"kind": "ok"}

    def _verb_release_pool(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "count",
                "count": self.database.release_pool(str(frame["pool"]))}

    def _verb_holder_of(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "holder",
                "holder": self.database.holder_of(str(frame["name"]))}

    def _verb_taken_count(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "count", "count": self.database.taken_count()}

    def _verb_free_names(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        # Unsorted by contract (see the verb table): the client unions
        # the per-shard sets, so ordering here is wasted work.
        return {"kind": "names",
                "names": list(self.database.free_names())}

    # -- observability / persistence / lifecycle -------------------------------

    def _verb_health(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "kind": "health",
            "pid": os.getpid(),
            "shard_index": self.shard_index,
            "shards": self.shards,
            "machines": len(self.database),
            "requests": self.requests,
            "uptime_s": time.monotonic() - self.started_at,
            "index_stats": self.database.index_stats(),
        }

    def _verb_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Write (or return) a v3 (or path-backed v4) snapshot of the
        live shard.

        With a ``path`` the text stays worker-side — the supervisor's
        checkpoint of a 100 MB shard costs one small reply, not a bulk
        transfer; without one the text rides back inline on
        continuation frames.  ``version=4`` needs a ``path`` (its
        binary column sidecar lands next to the snapshot file and
        cannot ride an inline text reply).
        """
        from repro.database.persistence import dumps_database, save_database
        version = int(frame.get("version", 3))
        path = frame.get("path")
        if version == 4 and path:
            try:
                save_database(self.database, path, version=4)
                with open(path, "rb") as fh:
                    crc = zlib.crc32(fh.read())
            except OSError as exc:
                raise DatabaseError(
                    f"snapshot write to {path!r} failed: {exc}") from exc
            return {"kind": "snapshot", "crc": crc,
                    "machines": len(self.database), "version": version,
                    "path": str(path)}
        text = dumps_database(self.database, version=version)
        crc = zlib.crc32(text.encode("utf-8"))
        reply = {"kind": "snapshot", "crc": crc,
                 "machines": len(self.database), "version": version}
        if path:
            try:
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp, path)  # atomic: never a torn snapshot file
            except OSError as exc:
                # Surface filesystem failures (deleted snapshot dir,
                # disk full) as an error frame, not a dead connection.
                raise DatabaseError(
                    f"snapshot write to {path!r} failed: {exc}") from exc
            reply["path"] = str(path)
        else:
            reply["text"] = text
        return reply

    def _verb_reset(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Replace the live shard with a fresh database (optionally
        seeded from ``rows``) — test and re-seed tooling."""
        records = [MachineRecord.from_row(row)
                   for row in frame.get("rows", [])]
        for record in records:
            self._check_routing(record.machine_name)
        # The replacement keeps the old database's engine choice, so a
        # columnar worker stays columnar across a test re-seed.
        self.database = WhitePagesDatabase(records,
                                           columnar=self.database.columnar)
        return {"kind": "ok", "machines": len(records)}

    def _verb_shutdown(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {"kind": "ok"}


# ---------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------


def _load_shard_database(snapshot_path: Optional[str],
                         columnar: Optional[bool] = None
                         ) -> WhitePagesDatabase:
    if not snapshot_path or not os.path.exists(snapshot_path):
        return WhitePagesDatabase(columnar=bool(columnar))
    from repro.database.persistence import load_database
    # load_database (not loads_database): a v4 per-shard snapshot then
    # mmap-attaches its column sidecar instead of rebuilding columns.
    return load_database(snapshot_path, columnar=columnar)


def run_shard_worker(shard_index: int, shards: int, host: str, port: int,
                     snapshot_path: Optional[str] = None,
                     ready_conn: Any = None,
                     columnar: Optional[bool] = None) -> None:
    """Process entry: own one shard, serve verbs until ``shutdown``.

    Builds the shard database (empty, or cold-started from a per-shard
    v3/v4 snapshot file), binds the TCP endpoint, reports the bound
    port through ``ready_conn`` (a :func:`multiprocessing.Pipe` end) so
    the supervisor can hand out real endpoints even when ``port=0``,
    then serves until a ``shutdown`` verb or SIGTERM.

    ``columnar`` is the persistence tri-state: ``None`` follows the
    snapshot version (v4 → columns on), ``True``/``False`` force the
    column kernel on or off for this worker.

    Importable and picklable, so it works under both the ``fork`` and
    ``spawn`` start methods (and as a CLI foreground process via
    ``repro shard-serve``).
    """
    database = _load_shard_database(snapshot_path, columnar)
    worker = ShardWorker(database, shard_index=shard_index, shards=shards)

    async def main() -> None:
        import signal
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                # Ctrl-C in foreground mode (or a supervisor's TERM)
                # becomes a graceful shutdown: connections drain, no
                # cancelled-task noise at loop teardown.
                loop.add_signal_handler(signum, worker._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break  # non-POSIX loop: fall back to KeyboardInterrupt
        await worker.start(host, port)
        if ready_conn is not None:
            ready_conn.send({"shard_index": shard_index,
                             "port": worker.port, "pid": os.getpid(),
                             "machines": len(database)})
            ready_conn.close()
        else:  # CLI foreground mode: print the endpoint for operators
            print(json.dumps({"shard_index": shard_index,
                              "port": worker.port,
                              "machines": len(database)}), flush=True)
        await worker.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        # Ctrl-C in foreground mode signals the whole process group;
        # the supervisor (or operator) is already tearing us down —
        # exit quietly instead of spraying one traceback per worker.
        pass
