"""The asyncio ActYP server.

Wraps an :class:`~repro.core.pipeline.ActYPService` behind a TCP endpoint
speaking the frame protocol.  Pipeline calls are synchronous and fast
(micro/milliseconds) — pool-creation walks run as compiled plans over
the white pages' attribute indexes, not linear scans — and they run on
the event loop directly, with a configurable thread offload for
deployments whose databases grow large enough for even indexed
matchmaking (or huge pool caches) to block the loop.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, Optional

from repro.core.pipeline import ActYPService
from repro.errors import ReproError, RuntimeProtocolError
from repro.runtime.protocol import read_frame, result_to_dict, write_frame

__all__ = ["ActYPServer"]

logger = logging.getLogger(__name__)


class ActYPServer:
    """One TCP endpoint in front of a pipeline deployment."""

    def __init__(self, service: ActYPService, *, offload_threshold: int = 0):
        self.service = service
        #: Database size beyond which pipeline calls run in a worker
        #: thread instead of on the event loop (0 = always on the loop).
        self.offload_threshold = offload_threshold
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections = 0
        self.requests = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        if self._server is not None:
            raise RuntimeProtocolError("server already started")
        self._server = await asyncio.start_server(self._on_connect, host, port)

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeProtocolError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ActYPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- connection handling ----------------------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        peer = writer.get_extra_info("peername")
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except asyncio.IncompleteReadError:
                    break  # clean disconnect
                response = await self._dispatch(frame)
                await write_frame(writer, response)
        except RuntimeProtocolError as exc:
            logger.warning("protocol error from %s: %s", peer, exc)
            try:
                await write_frame(writer, {"kind": "error",
                                           "message": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        self.requests += 1
        kind = frame.get("kind")
        if kind == "query":
            return await self._handle_query(frame)
        if kind == "release":
            return await self._handle_release(frame)
        if kind == "stats":
            return {"kind": "stats", **self.service.stats()}
        return {"kind": "error", "message": f"unknown request kind {kind!r}"}

    async def _call(self, fn, *args, **kwargs):
        if (self.offload_threshold
                and len(self.service.database) >= self.offload_threshold):
            return await asyncio.to_thread(fn, *args, **kwargs)
        return fn(*args, **kwargs)

    async def _handle_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        payload = frame.get("payload")
        if not isinstance(payload, (str, dict)):
            return {"kind": "error", "message": "query needs a payload"}
        format_name = frame.get("format", "punch")
        loop = asyncio.get_running_loop()
        try:
            result = await self._call(
                self.service.submit, payload,
                format_name=format_name,
                origin=str(frame.get("origin", "tcp")),
                now=loop.time(),
            )
        except ReproError as exc:
            return {"kind": "error", "message": str(exc)}
        return result_to_dict(result)

    async def _handle_release(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        access_key = frame.get("access_key")
        if not isinstance(access_key, str):
            return {"kind": "error", "message": "release needs access_key"}
        try:
            await self._call(self.service.release, access_key)
        except ReproError as exc:
            return {"kind": "error", "message": str(exc)}
        return {"kind": "released", "access_key": access_key}
