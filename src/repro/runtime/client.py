"""The asyncio ActYP client."""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Union

from repro.errors import RuntimeProtocolError
from repro.runtime.protocol import read_frame, write_frame

__all__ = ["ActYPClient"]


class ActYPClient:
    """A persistent connection to an :class:`~repro.runtime.server.ActYPServer`.

    One request is in flight at a time per client (the protocol has no
    correlation ids; open several clients for concurrency, as the paper's
    clients did with parallel connections).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ActYPClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- requests -----------------------------------------------------------------

    async def _roundtrip(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        async with self._lock:
            await write_frame(self._writer, frame)
            return await read_frame(self._reader)

    async def query(self, payload: Union[str, Dict[str, str]],
                    *, format_name: str = "punch",
                    origin: str = "client") -> Dict[str, Any]:
        """Submit a query; returns the result frame (raises on protocol
        errors, returns ``ok: False`` results as data)."""
        response = await self._roundtrip({
            "kind": "query",
            "payload": payload,
            "format": format_name,
            "origin": origin,
        })
        if response.get("kind") == "error":
            raise RuntimeProtocolError(response.get("message", "error"))
        return response

    async def release(self, access_key: str) -> None:
        response = await self._roundtrip({
            "kind": "release",
            "access_key": access_key,
        })
        if response.get("kind") != "released":
            raise RuntimeProtocolError(
                response.get("message", "release failed"))

    async def stats(self) -> Dict[str, Any]:
        response = await self._roundtrip({"kind": "stats"})
        if response.get("kind") != "stats":
            raise RuntimeProtocolError(response.get("message", "stats failed"))
        return response
