"""Centralized multi-queue scheduler (the PBS / Sun Grid Engine family).

"Cluster management systems such as Grid Engine, PBS and DQS typically
utilize centralized schedulers.  They accommodate jobs with diverse
resource usage characteristics by employing multiple submit queues (e.g.,
one queue for short jobs; another for large ones)" (Section 8).

The scheduler owns the whole machine set; every query goes through the
single scheduler, which classifies it into a queue by predicted CPU time
and then scans the *entire* machine set for the best admissible host.
The single scan over all machines (no aggregation) is what the pipeline's
dynamic pools avoid — the ablation bench shows the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.plan import compile_plan, machine_admissible
from repro.core.query import Allocation, Query
from repro.core.scheduling import get_objective
from repro.database.records import MachineRecord
from repro.database.sharding import WhitePages
from repro.errors import ConfigError, NoResourceAvailableError

import secrets

__all__ = ["QueueSpec", "CentralizedScheduler"]


@dataclass(frozen=True)
class QueueSpec:
    """One submit queue: a CPU-time band and a scheduling objective."""

    name: str
    max_cpu_seconds: float  # inclusive upper bound; inf = catch-all
    objective: str = "least_load"


DEFAULT_QUEUES = (
    QueueSpec("short", 60.0, "fastest"),
    QueueSpec("medium", 3600.0, "least_load"),
    QueueSpec("long", float("inf"), "least_load"),
)


class CentralizedScheduler:
    """One scheduler, several queues, full-database scans.

    Matching *semantics* come from the shared engine — the query's
    compiled plan for the constraint half, :func:`machine_admissible`
    for the runtime half — but the default access pattern remains the
    full walk these systems actually perform (their linear cost is the
    comparison the figures draw).  ``use_index=True`` swaps the walk for
    the plan's index path, turning this into the "centralized but
    indexed" ablation point.
    """

    def __init__(self, database: WhitePages,
                 queues: Sequence[QueueSpec] = DEFAULT_QUEUES,
                 *, use_index: bool = False):
        self.use_index = use_index
        if not queues:
            raise ConfigError("need at least one queue")
        bounds = [q.max_cpu_seconds for q in queues]
        if bounds != sorted(bounds):
            raise ConfigError("queues must be ordered by max_cpu_seconds")
        if bounds[-1] != float("inf"):
            raise ConfigError("last queue must be a catch-all (inf bound)")
        self.database = database
        self.queues = tuple(queues)
        self.queue_depths: Dict[str, int] = {q.name: 0 for q in queues}
        self._allocations: Dict[str, str] = {}  # access key -> machine
        self.scans = 0
        self.machines_scanned = 0

    # -- classification -----------------------------------------------------------

    def classify(self, query: Query) -> QueueSpec:
        """Pick the queue whose CPU band contains the prediction."""
        cpu = query.expected_cpu_use
        need = cpu if cpu is not None else 0.0
        for q in self.queues:
            if need <= q.max_cpu_seconds:
                return q
        return self.queues[-1]  # pragma: no cover - inf catch-all

    # -- scheduling -----------------------------------------------------------------

    def submit(self, query: Query) -> Allocation:
        """Scan every machine; allocate the best admissible match."""
        queue = self.classify(query)
        self.queue_depths[queue.name] += 1
        objective = get_objective(queue.objective)
        self.scans += 1
        plan = compile_plan(query)
        best: Optional[MachineRecord] = None
        best_key: Optional[Tuple[float, ...]] = None
        if self.use_index:
            candidates = self.database.match(plan, include_taken=True)
        else:
            candidates = self.database.scan(include_taken=True)
        for record in candidates:
            self.machines_scanned += 1
            if not self.use_index and not plan.verify(record):
                continue
            if not machine_admissible(record, query):
                continue
            key = objective.rank_key(record, query)
            if best_key is None or key < best_key:
                best, best_key = record, key
        self.queue_depths[queue.name] -= 1
        if best is None:
            raise NoResourceAvailableError(
                f"centralized scheduler found no machine for query "
                f"{query.query_id}"
            )
        access_key = secrets.token_hex(16)
        self.database.update_dynamic(
            best.machine_name,
            current_load=best.current_load + 1.0 / best.num_cpus,
            active_jobs=best.active_jobs + 1,
        )
        self._allocations[access_key] = best.machine_name
        return Allocation(
            machine_name=best.machine_name,
            address=best.machine_name,
            execution_unit_port=best.execution_unit_port,
            access_key=access_key,
            pool_name=f"queue:{queue.name}",
        )

    def release(self, access_key: str) -> None:
        machine = self._allocations.pop(access_key, None)
        if machine is None:
            raise NoResourceAvailableError("unknown access key")
        record = self.database.get(machine)
        self.database.update_dynamic(
            machine,
            current_load=max(0.0, record.current_load - 1.0 / record.num_cpus),
            active_jobs=max(0, record.active_jobs - 1),
        )

    @property
    def scan_cost_per_query(self) -> float:
        """Average machines touched per scheduling decision."""
        return self.machines_scanned / self.scans if self.scans else 0.0
