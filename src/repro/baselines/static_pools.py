"""Static aggregation: the strawman the *active* yellow pages replaces.

"Traditional yellow pages directories are based on the implicit
assumption that the listings can be classified according to fixed and
well-established criteria ...  In a computing environment, however, it is
impractical to anticipate all possible permutations" (Section 4).

:class:`StaticPoolScheduler` aggregates machines into pools *once*, from
an administrator-supplied category list.  Queries whose pool name matches
a configured category are served exactly like ActYP pools; anything else
fails (or, optionally, falls back to a full database scan — the behaviour
knob the ablation bench sweeps).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.language import parse_query
from repro.core.plan import compile_plan, machine_admissible
from repro.core.query import Allocation, Query
from repro.core.resource_pool import ResourcePool
from repro.core.signature import pool_name_for
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import NoResourceAvailableError, NoSuchPoolError

__all__ = ["StaticPoolScheduler"]


class StaticPoolScheduler:
    """Fixed categories decided at configuration time."""

    def __init__(self, database: WhitePagesDatabase,
                 category_queries: Sequence[str],
                 *, fallback_scan: bool = False):
        self.database = database
        self.fallback_scan = fallback_scan
        self._pools: Dict[str, ResourcePool] = {}
        self._allocations: Dict[str, ResourcePool] = {}
        self.misses = 0
        for text in category_queries:
            query = parse_query(text).basic()
            name = pool_name_for(query)
            pool = ResourcePool(name, database, exemplar_query=query)
            pool.initialize()
            self._pools[name.full] = pool

    @property
    def pool_names(self) -> List[str]:
        return sorted(self._pools)

    def pool(self, full_name: str) -> ResourcePool:
        p = self._pools.get(full_name)
        if p is None:
            raise NoSuchPoolError(full_name)
        return p

    def submit(self, query: Query, now: float = 0.0) -> Allocation:
        """Serve from the matching static pool, else miss."""
        name = pool_name_for(query)
        pool = self._pools.get(name.full)
        if pool is not None:
            allocation = pool.allocate(query, now=now)
            self._allocations[allocation.access_key] = pool
            return allocation
        self.misses += 1
        if not self.fallback_scan:
            raise NoSuchPoolError(
                f"no static category for pool name {name.full!r}"
            )
        # Fallback: match the leftover (untaken) machines through the
        # shared engine — same plan execution and admission check as the
        # dynamic pools, no mirrored matching logic.
        for record in self.database.match(compile_plan(query)):
            if not machine_admissible(record, query):
                continue
            # Ad-hoc allocation outside any pool.
            import secrets
            access_key = secrets.token_hex(16)
            self.database.update_dynamic(
                record.machine_name,
                current_load=record.current_load + 1.0 / record.num_cpus,
                active_jobs=record.active_jobs + 1,
            )
            return Allocation(
                machine_name=record.machine_name,
                address=record.machine_name,
                execution_unit_port=record.execution_unit_port,
                access_key=access_key,
                pool_name="fallback-scan",
            )
        raise NoResourceAvailableError(
            f"fallback scan found nothing for query {query.query_id}"
        )

    def release(self, access_key: str) -> None:
        pool = self._allocations.pop(access_key, None)
        if pool is None:
            raise NoResourceAvailableError("unknown access key")
        pool.release(access_key)
