"""Baseline resource-management systems the paper compares against.

Section 8 positions ActYP against three families; we implement the
scheduling core of each so ablation benches can contrast them with the
pipeline on identical fleets and workloads:

- :class:`~repro.baselines.central.CentralizedScheduler` — a PBS/SGE/DQS
  style centralized scheduler with multiple submit queues ("one queue for
  short jobs; another for large ones").
- :class:`~repro.baselines.matchmaker.Matchmaker` — a Condor-style
  centralized matchmaker: every machine advertises a ClassAd-like record;
  each query is matched against *all* advertisements (no aggregation).
- :class:`~repro.baselines.static_pools.StaticPoolScheduler` — yellow
  pages with *static* aggregation: pools are fixed at configuration time,
  so queries that fit no configured category fail or fall back; the
  contrast that motivates the "active" directory.
"""

from repro.baselines.central import CentralizedScheduler, QueueSpec
from repro.baselines.matchmaker import Matchmaker
from repro.baselines.static_pools import StaticPoolScheduler

__all__ = [
    "CentralizedScheduler",
    "QueueSpec",
    "Matchmaker",
    "StaticPoolScheduler",
]
