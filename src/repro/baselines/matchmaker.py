"""Condor-style centralized matchmaking (paper reference [22]).

"Condor employs a preemptive, centralized, receiver-initiated scheduling
mechanism" built on matchmaking: machines *advertise* classified ads;
a central matchmaker pairs each job request with the advertisement that
satisfies its requirements and maximises its rank expression.

Our reproduction keeps the two-sided structure — machine ads carry their
own requirements (an owner policy, e.g. minimum keyboard-idle stand-in),
and matching is symmetric: both the job's and the machine's requirements
must hold — which is the essential difference from ActYP's one-sided
pools.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.plan import compile_plan
from repro.core.query import Allocation, Query
from repro.database.records import MachineRecord
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import NoResourceAvailableError

__all__ = ["MachineAd", "Matchmaker"]

#: Machine-side requirement over the incoming query.
AdRequirement = Callable[[MachineRecord, Query], bool]
#: Job-side rank expression (higher = preferred).
RankFn = Callable[[MachineRecord, Query], float]


def _default_machine_requirement(record: MachineRecord, query: Query) -> bool:
    """Machines accept jobs while lightly loaded (the idle-workstation
    harvesting policy Condor was built around)."""
    return record.current_load < record.max_allowed_load * 0.75


def _default_rank(record: MachineRecord, query: Query) -> float:
    return record.effective_speed - 10.0 * record.current_load


@dataclass
class MachineAd:
    """One machine's advertisement to the matchmaker."""

    record_name: str
    requirement: AdRequirement = _default_machine_requirement
    advertised_at: float = 0.0


class Matchmaker:
    """The central matchmaker: every query scans every advertisement."""

    def __init__(self, database: WhitePagesDatabase,
                 rank: RankFn = _default_rank):
        self.database = database
        self.rank = rank
        self._ads: Dict[str, MachineAd] = {}
        self._allocations: Dict[str, str] = {}
        self.matches = 0
        self.ads_scanned = 0

    # -- advertisement ---------------------------------------------------------

    def advertise(self, machine_name: str,
                  requirement: Optional[AdRequirement] = None,
                  now: float = 0.0) -> MachineAd:
        """(Re-)publish a machine's ad; Condor ads refresh periodically."""
        ad = MachineAd(
            record_name=machine_name,
            requirement=requirement or _default_machine_requirement,
            advertised_at=now,
        )
        self._ads[machine_name] = ad
        return ad

    def advertise_all(self, now: float = 0.0) -> int:
        for name in self.database.names():
            self.advertise(name, now=now)
        return len(self._ads)

    def withdraw(self, machine_name: str) -> None:
        self._ads.pop(machine_name, None)

    @property
    def ad_count(self) -> int:
        return len(self._ads)

    # -- matching ---------------------------------------------------------------

    def match(self, query: Query) -> Allocation:
        """Two-sided match: job requirements AND machine requirements.

        Job-side requirements are the query's compiled clause set from
        the shared engine; the walk over advertisements stays linear —
        Condor's matchmaker really does consider every ad, which is the
        baseline behaviour the comparison needs.
        """
        self.matches += 1
        plan = compile_plan(query)
        best: Optional[MachineRecord] = None
        best_rank = float("-inf")
        for name in sorted(self._ads):
            self.ads_scanned += 1
            ad = self._ads[name]
            record = self.database.get(name)
            if not record.is_up or record.is_overloaded:
                continue
            if not plan.verify(record):
                continue  # job-side requirements
            if not ad.requirement(record, query):
                continue  # machine-side requirements
            r = self.rank(record, query)
            if r > best_rank:
                best, best_rank = record, r
        if best is None:
            raise NoResourceAvailableError(
                f"matchmaker found no match for query {query.query_id}"
            )
        access_key = secrets.token_hex(16)
        self.database.update_dynamic(
            best.machine_name,
            current_load=best.current_load + 1.0 / best.num_cpus,
            active_jobs=best.active_jobs + 1,
        )
        self._allocations[access_key] = best.machine_name
        return Allocation(
            machine_name=best.machine_name,
            address=best.machine_name,
            execution_unit_port=best.execution_unit_port,
            access_key=access_key,
            pool_name="matchmaker",
        )

    def release(self, access_key: str) -> None:
        machine = self._allocations.pop(access_key, None)
        if machine is None:
            raise NoResourceAvailableError("unknown access key")
        record = self.database.get(machine)
        self.database.update_dynamic(
            machine,
            current_load=max(0.0, record.current_load - 1.0 / record.num_cpus),
            active_jobs=max(0, record.active_jobs - 1),
        )
