"""In-process ActYP deployment: the :class:`ActYPService` facade.

This wires query managers, pool managers, and resource pools together with
direct method calls — no simulated or real network.  It is the quickstart
backend, the reference for unit/integration tests, and the logic the DES
(:mod:`repro.deploy.simulated`) and asyncio (:mod:`repro.runtime`)
deployments both mirror with queueing and latency added.

A minimal session::

    from repro.core import build_service
    from repro.database import WhitePagesDatabase

    service = build_service(database)
    result = service.submit(\"\"\"
        punch.rsrc.arch = sun
        punch.rsrc.memory = >=10
        punch.user.login = kapadia
    \"\"\")
    print(result.allocation)
    service.release(result.allocation.access_key)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.config import PipelineConfig
from repro.core.pool_manager import (
    Delegate,
    FanoutToPools,
    PoolManager,
    RouteFailed,
    RouteToPool,
)
from repro.core.query import Query, QueryResult
from repro.core.query_manager import Dispatch, QueryManager
from repro.core.resource_pool import ResourcePool
from repro.database.directory import LocalDirectoryService
from repro.database.policy import PolicyRegistry
from repro.database.shadow import ShadowAccountRegistry
from repro.database.sharding import WhitePages
from repro.errors import NoResourceAvailableError, PipelineError
from repro.net.address import Endpoint

__all__ = ["ActYPService", "build_service"]


class ActYPService:
    """Synchronous in-process deployment of the full pipeline."""

    def __init__(
        self,
        database: WhitePages,
        query_manager: QueryManager,
        pool_managers: Dict[Endpoint, PoolManager],
    ):
        self.database = database
        self.query_manager = query_manager
        self.pool_managers = pool_managers
        #: access key -> owning pool, for release routing.
        self._allocations: Dict[str, ResourcePool] = {}
        self.completed = 0
        self.failed = 0

    # -- client API -----------------------------------------------------------------

    def submit(self, payload: Any, *, format_name: str = "punch",
               origin: str = "client", now: float = 0.0) -> QueryResult:
        """Run one query through the whole pipeline and reintegrate."""
        query_id, dispatches = self.query_manager.admit(
            payload, format_name=format_name, origin=origin, now=now,
        )
        final: Optional[QueryResult] = None
        for dispatch in dispatches:
            if final is not None and final.ok:
                # First-match already satisfied the query: report the
                # remaining components as cancelled without executing them.
                self.query_manager.complete_component(QueryResult(
                    query_id=dispatch.component.query_id,
                    component_index=dispatch.component.component_index,
                    component_count=dispatch.component.component_count,
                    error="cancelled after first match",
                    completed_at=now,
                ))
                continue
            result = self._run_component(dispatch, now=now)
            outcome = self.query_manager.complete_component(result)
            if outcome is not None and final is None:
                final = outcome
            elif outcome is None and result.ok:
                # Redundant fan-out duplicate (or late success): the
                # reintegration layer dropped it, so release the machine.
                self.release(result.allocation.access_key)
        if final is None:
            raise PipelineError(
                f"query {query_id} completed no reintegration result"
            )
        if final.ok:
            self.completed += 1
        else:
            self.failed += 1
        return final

    def release(self, access_key: str) -> None:
        """Relinquish the machine and shadow account of a finished run."""
        pool = self._allocations.pop(access_key, None)
        if pool is None:
            raise NoResourceAvailableError(
                f"unknown access key {access_key[:8]}..."
            )
        pool.release(access_key)

    def co_allocate(self, payload: Any, count: int, *,
                    format_name: str = "punch", now: float = 0.0):
        """Extension: allocate ``count`` distinct machines for one run.

        The paper's ActYP "does not support ... co-allocation of compute
        resources" (Section 8, contrasting with Globus); this adds it on
        top of the pool abstraction.  The query must be basic (no "or"
        alternatives).  All-or-nothing; returns the allocation list.
        """
        composite = self.query_manager.translators.translate(
            payload, format_name)
        query = composite.basic().with_identity(
            query_id=0, origin="co-allocate", submitted_at=now)
        endpoint = self.query_manager.select_pool_manager(query)
        manager = self.pool_managers[endpoint]
        decision = manager.route(query, now=now)
        if not isinstance(decision, RouteToPool):
            raise NoResourceAvailableError(
                f"co-allocation could not route: {decision}"
            )
        pool = self._resolve_pool(decision.entry.pool_name,
                                  decision.entry.instance_number)
        allocations = pool.allocate_many(query, count, now=now)
        for alloc in allocations:
            self._allocations[alloc.access_key] = pool
        return allocations

    def sweep_idle_pools(self, now: float, idle_timeout_s: float = 300.0
                         ) -> int:
        """Reclaim idle pools across all pool managers; returns the count
        of destroyed pool names (see :mod:`repro.core.janitor`)."""
        from repro.core.janitor import PoolJanitor
        destroyed = 0
        for manager in self.pool_managers.values():
            janitor = PoolJanitor(manager, idle_timeout_s=idle_timeout_s)
            destroyed += len(janitor.sweep(now))
        return destroyed

    # -- component execution -------------------------------------------------------------

    def _run_component(self, dispatch: Dispatch, *, now: float) -> QueryResult:
        """Walk one basic component through pool managers to allocation."""
        endpoint = dispatch.pool_manager
        query = dispatch.component
        hops = 0
        max_hops = 1 + query.ttl + len(self.pool_managers)
        while True:
            hops += 1
            if hops > max_hops:
                return self._failure(query, "delegation loop detected", now)
            manager = self.pool_managers.get(endpoint)
            if manager is None:
                return self._failure(
                    query, f"no pool manager at {endpoint}", now)
            decision = manager.route(query, now=now)
            if isinstance(decision, RouteToPool):
                pool = self._resolve_pool(
                    decision.entry.pool_name, decision.entry.instance_number)
                try:
                    allocation = pool.allocate(decision.query, now=now)
                except NoResourceAvailableError as exc:
                    return self._failure(query, str(exc), now)
                self._allocations[allocation.access_key] = pool
                return QueryResult(
                    query_id=query.query_id,
                    component_index=query.component_index,
                    component_count=query.component_count,
                    allocation=allocation,
                    completed_at=now,
                )
            if isinstance(decision, FanoutToPools):
                # Split pool: try every fragment, keep the best success
                # (sequential here; the DES/asyncio deployments run the
                # fragment searches concurrently).
                last_error = "no fragments"
                for entry in decision.entries:
                    pool = self._resolve_pool(
                        entry.pool_name, entry.instance_number)
                    try:
                        allocation = pool.allocate(decision.query, now=now)
                    except NoResourceAvailableError as exc:
                        last_error = str(exc)
                        continue
                    self._allocations[allocation.access_key] = pool
                    return QueryResult(
                        query_id=query.query_id,
                        component_index=query.component_index,
                        component_count=query.component_count,
                        allocation=allocation,
                        completed_at=now,
                    )
                return self._failure(query, last_error, now)
            if isinstance(decision, Delegate):
                endpoint = decision.peer
                query = decision.query
                continue
            assert isinstance(decision, RouteFailed)
            return self._failure(query, decision.reason, now)

    def _failure(self, query: Query, reason: str, now: float) -> QueryResult:
        return QueryResult(
            query_id=query.query_id,
            component_index=query.component_index,
            component_count=query.component_count,
            error=reason,
            completed_at=now,
        )

    def _resolve_pool(self, pool_name: str, instance: int) -> ResourcePool:
        for manager in self.pool_managers.values():
            pool = manager.local_pools.get((pool_name, instance))
            if pool is not None:
                return pool
        raise PipelineError(f"no hosted pool {pool_name}#{instance}")

    # -- introspection -----------------------------------------------------------------

    def pools(self) -> List[ResourcePool]:
        out: List[ResourcePool] = []
        for manager in self.pool_managers.values():
            out.extend(manager.local_pools.values())
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "pools": len(self.pools()),
            "open_queries": self.query_manager.open_queries(),
        }


def build_service(
    database: WhitePages,
    *,
    config: Optional[PipelineConfig] = None,
    n_pool_managers: int = 1,
    shadow_registry: Optional[ShadowAccountRegistry] = None,
    policy_registry: Optional[PolicyRegistry] = None,
    domain: str = "default",
    seed: int = 0,
) -> ActYPService:
    """Assemble an in-process deployment.

    One query manager fronting ``n_pool_managers`` pool managers, all
    sharing one local directory service (the paper: "within a given
    administrative domain, replicated instances share information via
    directory services and databases").
    """
    cfg = (config or PipelineConfig()).validated()
    directory = LocalDirectoryService(domain=domain)
    rng = np.random.default_rng(seed)
    endpoints = [
        Endpoint(host=f"pm{i}", port=8100 + i, domain=domain)
        for i in range(n_pool_managers)
    ]
    managers: Dict[Endpoint, PoolManager] = {}
    for i, ep in enumerate(endpoints):
        managers[ep] = PoolManager(
            name=str(ep),
            directory=directory,
            database=database,
            config=cfg.pool_manager,
            pool_config=cfg.pool,
            shadow_registry=shadow_registry,
            policy_registry=policy_registry,
            rng=np.random.default_rng(seed * 1000 + i + 1),
        )
    for ep in endpoints:
        directory.add_peer_pool_manager(ep)
    qm = QueryManager(
        name="qm0",
        pool_managers=endpoints,
        config=cfg.query_manager,
        reintegration_policy=cfg.query_manager.reintegration_policy,
        fanout=cfg.query_manager.fanout,
        default_ttl=cfg.pool_manager.delegation_ttl,
        rng=rng,
    )
    return ActYPService(database, qm, managers)
