"""Query IR and compiled plans: the query half of the matchmaking engine.

The parser (:mod:`repro.core.language`) already yields structured
:class:`~repro.core.query.Clause` tuples, but the layers below used to
collapse them into opaque predicate callables and hand those to
``WhitePagesDatabase.scan()`` — O(database) per walk, and impossible for
the database to plan against.  This module keeps the query *inspectable*
all the way down:

- :class:`ClauseSet` partitions a basic query's ``rsrc`` clauses by how
  an index can serve them: hash-probe equalities, sorted-range bounds,
  and a residual evaluated per candidate.
- :func:`compile_plan` turns a query (or raw clauses) into a
  :class:`QueryPlan` the database executes over its
  :class:`~repro.database.indexes.AttributeIndexCatalog`: pick the most
  selective indexed clause as the access path, then *verify every
  candidate against the full clause set* — so a plan is always exactly
  equivalent to the brute-force predicate walk it replaces.
- :func:`machine_admissible` is the shared per-record admission check
  (health, service flags, load ceiling, access groups, tool groups,
  usage policy) that resource pools, the centralized baseline, and the
  static-pool fallback previously each re-implemented.

All three deployments (in-process facade, DES, asyncio runtime) reach
the database exclusively through plans compiled here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.core.operators import Op, RangeValue, coerce_number
from repro.core.query import Clause, Query
from repro.database.policy import PolicyContext, PolicyRegistry
from repro.database.records import MachineRecord

__all__ = [
    "AttrBound",
    "ClauseSet",
    "QueryPlan",
    "compile_plan",
    "machine_admissible",
]

#: Operators a sorted index serves.
_ORDERED_OPS = (Op.GE, Op.LE, Op.GT, Op.LT, Op.RANGE)


@dataclass(frozen=True)
class ClauseSet:
    """A basic query's ``rsrc`` constraints, partitioned for planning.

    This is the inspectable IR the pipeline threads through instead of
    closures: ``equalities`` are hash-probe candidates, ``ranges`` are
    sorted-index candidates, ``residual`` holds everything an index
    cannot serve directly (``!=``, ``in``, malformed ranges) and is
    checked per candidate record.
    """

    equalities: Tuple[Clause, ...] = ()
    ranges: Tuple[Clause, ...] = ()
    residual: Tuple[Clause, ...] = ()

    @classmethod
    def from_clauses(cls, clauses: Iterable[Clause]) -> "ClauseSet":
        eq, rng, res = [], [], []
        for c in clauses:
            if c.op is Op.EQ:
                eq.append(c)
            elif c.op in _ORDERED_OPS and (
                    c.op is not Op.RANGE or isinstance(c.value, RangeValue)):
                rng.append(c)
            else:
                res.append(c)
        return cls(equalities=tuple(eq), ranges=tuple(rng),
                   residual=tuple(res))

    @classmethod
    def from_query(cls, query: Query) -> "ClauseSet":
        return cls.from_clauses(query.rsrc_clauses)

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return self.equalities + self.ranges + self.residual

    def __len__(self) -> int:
        return len(self.equalities) + len(self.ranges) + len(self.residual)

    # -- verification (the full language semantics, no shortcuts) ----------

    def matches_view(self, view: Dict[str, Any]) -> bool:
        return all(c.matches(view.get(c.name)) for c in self.clauses)

    def matches_record(self, record: MachineRecord) -> bool:
        return self.matches_view(record.attribute_view())


@dataclass(frozen=True)
class AttrBound:
    """Conjunction of ordered constraints on one attribute, as an
    interval.  ``lo > hi`` (or an uncoercible query value upstream)
    means the bound — and therefore the whole plan — is unsatisfiable."""

    name: str
    lo: float = -math.inf
    hi: float = math.inf
    incl_lo: bool = True
    incl_hi: bool = True

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and not (self.incl_lo and self.incl_hi)


@dataclass(frozen=True)
class QueryPlan:
    """A compiled access path over the attribute indexes.

    ``eq_probes`` and ``bounds`` are the indexable clauses (the database
    picks whichever is most selective); ``clause_set`` is re-verified on
    every candidate, so execution is exact regardless of which probe was
    chosen.  ``unsatisfiable`` plans short-circuit to the empty result
    (e.g. ``memory >= "lots"`` — an uncoercible ordered value can never
    hold under the fail-closed operator semantics).
    """

    clause_set: ClauseSet = field(default_factory=ClauseSet)
    eq_probes: Tuple[Tuple[str, Any], ...] = ()
    bounds: Tuple[AttrBound, ...] = ()
    unsatisfiable: bool = False

    @property
    def is_indexable(self) -> bool:
        """At least one clause can drive an index probe."""
        return bool(self.eq_probes or self.bounds)

    def verify(self, record: MachineRecord) -> bool:
        return self.clause_set.matches_record(record)

    def explain(self) -> str:
        """Human-readable access path (tests and operator tooling)."""
        if self.unsatisfiable:
            return "unsatisfiable"
        parts = []
        for attr, value in self.eq_probes:
            parts.append(f"hash({attr}=={value!r})")
        for b in self.bounds:
            lo_b = "[" if b.incl_lo else "("
            hi_b = "]" if b.incl_hi else ")"
            parts.append(f"range({b.name} in {lo_b}{b.lo}, {b.hi}{hi_b})")
        for c in self.clause_set.residual:
            parts.append(f"filter({c})")
        return " & ".join(parts) if parts else "full-walk"


def _merge_bound(bound: AttrBound, op: Op, value: Any) -> Optional[AttrBound]:
    """Intersect one ordered clause into ``bound``; None = unsatisfiable."""
    if op is Op.RANGE:
        lo, hi = value.lo, value.hi
        if math.isnan(lo) or math.isnan(hi):
            return None  # fail-closed: NaN bounds admit nothing
        incl_lo = incl_hi = True
    else:
        qv = coerce_number(value)
        if qv is None or math.isnan(qv):
            return None  # fail-closed: no machine satisfies this clause
        lo, hi = -math.inf, math.inf
        incl_lo = incl_hi = True
        if op is Op.GE:
            lo = qv
        elif op is Op.GT:
            lo, incl_lo = qv, False
        elif op is Op.LE:
            hi = qv
        elif op is Op.LT:
            hi, incl_hi = qv, False
    new_lo, new_incl_lo = bound.lo, bound.incl_lo
    if lo > new_lo or (lo == new_lo and not incl_lo):
        new_lo, new_incl_lo = lo, incl_lo
    new_hi, new_incl_hi = bound.hi, bound.incl_hi
    if hi < new_hi or (hi == new_hi and not incl_hi):
        new_hi, new_incl_hi = hi, incl_hi
    merged = AttrBound(name=bound.name, lo=new_lo, hi=new_hi,
                       incl_lo=new_incl_lo, incl_hi=new_incl_hi)
    return None if merged.empty else merged


PlanSource = Union[Query, ClauseSet, Iterable[Clause], None]


def compile_plan(source: PlanSource) -> QueryPlan:
    """Compile a query / clause set into an index access plan.

    ``None`` (or an empty clause set) compiles to the match-everything
    plan — a pool created without an exemplar aggregates every free
    machine, exactly as the old ``scan(None)`` did.
    """
    if isinstance(source, QueryPlan):  # idempotent convenience
        return source
    if source is None:
        clause_set = ClauseSet()
    elif isinstance(source, ClauseSet):
        clause_set = source
    elif isinstance(source, Query):
        clause_set = ClauseSet.from_query(source)
    else:
        clause_set = ClauseSet.from_clauses(source)

    eq_probes = tuple((c.name, c.value) for c in clause_set.equalities)

    bounds: Dict[str, AttrBound] = {}
    for c in clause_set.ranges:
        bound = bounds.get(c.name, AttrBound(name=c.name))
        merged = _merge_bound(bound, c.op, c.value)
        if merged is None:
            return QueryPlan(clause_set=clause_set, unsatisfiable=True)
        bounds[c.name] = merged

    return QueryPlan(
        clause_set=clause_set,
        eq_probes=eq_probes,
        bounds=tuple(bounds[k] for k in sorted(bounds)),
    )


# ---------------------------------------------------------------------------
# Shared per-record admission check
# ---------------------------------------------------------------------------

def machine_admissible(
    record: MachineRecord,
    query: Query,
    *,
    policy_registry: Optional[PolicyRegistry] = None,
) -> bool:
    """Can ``record`` serve ``query`` right now?

    The runtime-state half of matching (the constraint half is the
    compiled plan): machine up, PUNCH service daemons live (field 7),
    below the administrator's load ceiling (field 10), the query's
    access group allowed (field 16), tool support honoured when the
    query names one (field 17), and the usage-policy metaprogram (field
    19) satisfied when a registry is supplied.

    Resource pools, the centralized-scheduler baseline, and the
    static-pool fallback all call exactly this function, so admission
    semantics cannot drift between deployments or baselines.
    """
    if not record.is_up:
        return False
    if not record.service_status_flags.all_up:
        return False
    if record.is_overloaded:
        return False
    group = query.access_group
    if record.user_groups and group not in record.user_groups:
        return False
    tool = query.get("punch.rsrc.tool")
    if tool is not None and str(tool) not in record.tool_groups:
        return False
    if policy_registry is not None:
        ctx = PolicyContext(login=query.login, access_group=group)
        if not policy_registry.evaluate(record, ctx):
            return False
    return True
