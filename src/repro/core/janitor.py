"""Idle-pool reclamation: the dis-aggregation half of "active" pools.

The paper's directory aggregates on the fly but its prototype never
*releases* aggregations, which makes overlapping criteria starve (a
``arch=sun`` pool holds every sun machine forever, so a later
``arch=sun AND memory>=256`` pool finds nothing to take).  The
:class:`PoolJanitor` completes the adaptation loop the paper's
"continuously optimizes system response" claim implies: pools idle past a
timeout are destroyed, their machines return to the white pages, and the
next query mix re-aggregates them into whatever shapes it needs.

Used two ways:

- periodically (a sweep process in the DES / an asyncio task), and
- on demand: a pool manager whose creation walk finds nothing can sweep
  and retry (``PoolManagerConfig.reclaim_on_miss``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.net.address import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pool_manager import PoolManager

__all__ = ["PoolJanitor"]


class PoolJanitor:
    """Destroys idle pools hosted by one pool manager.

    Parameters
    ----------
    manager:
        The pool manager whose local pools are swept.
    idle_timeout_s:
        A pool is reclaimable when it has no active runs and saw no
        allocation for this long.
    unbind_hook:
        Called with each destroyed instance's endpoint so a deployment
        can tear down the server bound there.
    """

    def __init__(self, manager: "PoolManager", idle_timeout_s: float = 300.0,
                 unbind_hook: Optional[Callable[[Endpoint], None]] = None):
        self.manager = manager
        self.idle_timeout_s = idle_timeout_s
        self.unbind_hook = unbind_hook
        self.pools_reclaimed = 0
        self.machines_reclaimed = 0

    def sweep(self, now: float,
              idle_timeout_s: Optional[float] = None) -> List[str]:
        """Destroy every idle local pool; returns the destroyed names.

        All instances of a pool must be idle before any is destroyed —
        replicas share machines, so destroying one while a sibling is
        serving would release machines out from under it.
        """
        timeout = self.idle_timeout_s if idle_timeout_s is None \
            else idle_timeout_s
        by_name: dict = {}
        for (name, instance), pool in self.manager.local_pools.items():
            by_name.setdefault(name, []).append((instance, pool))

        destroyed: List[str] = []
        for name, instances in by_name.items():
            if not all(pool.is_idle(now, timeout)
                       for _i, pool in instances):
                continue
            # Destroy highest instance first so directory entries and
            # machine releases stay consistent.
            for instance, pool in sorted(instances, reverse=True):
                released = pool.destroy()
                self.machines_reclaimed += released
                try:
                    entries = self.manager.directory.lookup(name)
                    entry = next(e for e in entries
                                 if e.instance_number == instance)
                    self.manager.directory.deregister(name, instance)
                    if self.unbind_hook is not None:
                        self.unbind_hook(entry.endpoint)
                except StopIteration:  # pragma: no cover - defensive
                    pass
                del self.manager.local_pools[(name, instance)]
                self.pools_reclaimed += 1
            destroyed.append(name)
        return destroyed
