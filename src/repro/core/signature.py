"""Pool naming: signature + identifier (Section 5.2.2).

"A pool name is made up of two components: a signature and an identifier.
... The signature is constructed by forming a colon-separated list of
sorted rsrc keys in the query, and a string that specifies the
corresponding comparative operators ... The identifier is constructed by
forming a colon-separated list of the values associated with the sorted
rsrc keys that make up the signature."

For the paper's sample query the signature is
``arch:domain:license:memory,==:==:==:>=`` and the identifier
``sun:purdue:tsuprem4:10``; :func:`pool_name_for` reproduces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.query import Clause, Query
from repro.errors import QuerySyntaxError

__all__ = ["PoolName", "pool_name_for"]


@dataclass(frozen=True, order=True)
class PoolName:
    """``signature`` (keys + operators) and ``identifier`` (values)."""

    signature: str
    identifier: str

    @property
    def full(self) -> str:
        """Canonical directory key for this pool."""
        return f"{self.signature}/{self.identifier}"

    def __str__(self) -> str:
        return self.full

    @staticmethod
    def from_clauses(clauses: Tuple[Clause, ...]) -> "PoolName":
        if not clauses:
            raise QuerySyntaxError(
                "cannot name a pool from a query with no rsrc clauses"
            )
        ordered = sorted(clauses, key=lambda c: c.name)
        keys = ":".join(c.name for c in ordered)
        ops = ":".join(str(c.op) for c in ordered)
        values = ":".join(c.value_text() for c in ordered)
        return PoolName(signature=f"{keys},{ops}", identifier=values)


def pool_name_for(query: Query) -> PoolName:
    """Map a basic query to its pool name from the sorted ``rsrc`` clauses.

    ``appl`` and ``user`` clauses deliberately do not participate: two
    users asking for the same kind of resource must land in the same pool
    for aggregation to pay off.
    """
    return PoolName.from_clauses(query.rsrc_clauses)
