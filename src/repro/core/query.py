"""Query data model.

A *clause* constrains one hierarchical key (``family.type.name``), e.g.
``punch.rsrc.memory >= 10``.  A *basic query* is a conjunction of clauses.
A *composite query* contains "or" alternatives; the query-manager stage
decomposes it into basic queries (see :mod:`repro.core.decompose`).

Clause semantics by type (Section 5.1):

- ``rsrc`` — resource requirements; unspecified keys default to
  "don't care"; these keys define the pool name.
- ``appl`` — predicted application behaviour (expected CPU use, memory);
  default "undefined"; used by scheduling objectives, not pool naming.
- ``user`` — login/access-group/access keys; default "undefined"; used by
  access control and policies, not pool naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.core.operators import Op, RangeValue, compare, format_number
from repro.database.records import MachineRecord
from repro.errors import QuerySyntaxError

__all__ = ["Clause", "Query", "Allocation", "QueryResult"]


@dataclass(frozen=True, order=True)
class Clause:
    """One constraint: ``family.type.name <op> value``."""

    family: str
    type: str
    name: str
    op: Op = Op.EQ
    value: Any = None

    def __post_init__(self) -> None:
        for part, label in ((self.family, "family"), (self.type, "type"),
                            (self.name, "name")):
            if not part or "." in part or ":" in part:
                raise QuerySyntaxError(
                    f"invalid {label} component {part!r} in clause key"
                )
        # Normalise collections for hashability.
        if isinstance(self.value, (set, list)):
            object.__setattr__(self, "value", frozenset(self.value))

    @property
    def key(self) -> str:
        return f"{self.family}.{self.type}.{self.name}"

    def matches(self, machine_value: Any) -> bool:
        return compare(self.op, machine_value, self.value)

    def value_text(self) -> str:
        """The value as it appears in identifiers and query text."""
        v = self.value
        if isinstance(v, frozenset):
            return "|".join(sorted(str(x) for x in v))
        if isinstance(v, RangeValue):
            return str(v)
        if isinstance(v, float):
            return format_number(v)
        return str(v)

    def __str__(self) -> str:
        op_txt = "" if self.op is Op.EQ else str(self.op)
        return f"{self.key} = {op_txt}{self.value_text()}"


@dataclass(frozen=True)
class Query:
    """A basic (conjunctive) query plus routing metadata.

    ``origin``/``query_id`` identify the submission; ``component_index`` /
    ``component_count`` carry the reintegration state a decomposed
    composite propagates through the pipeline ("appropriate state
    information is propagated along with each query component", Section
    5.2.1).  ``visited_pool_managers`` and ``ttl`` implement delegation
    loop-prevention (Section 5.2.2).
    """

    clauses: Tuple[Clause, ...]
    query_id: int = 0
    origin: str = ""
    component_index: int = 0
    component_count: int = 1
    ttl: int = 4
    visited_pool_managers: Tuple[str, ...] = ()
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.component_count < 1:
            raise QuerySyntaxError("component_count must be >= 1")
        if not (0 <= self.component_index < self.component_count):
            raise QuerySyntaxError("component_index out of range")
        keys = [c.key for c in self.clauses]
        if len(keys) != len(set(keys)):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise QuerySyntaxError(f"duplicate clause keys: {dupes}")

    # -- clause access -----------------------------------------------------------

    def clauses_of_type(self, type_: str, family: str = "punch"
                        ) -> Tuple[Clause, ...]:
        return tuple(c for c in self.clauses
                     if c.type == type_ and c.family == family)

    @property
    def rsrc_clauses(self) -> Tuple[Clause, ...]:
        return self.clauses_of_type("rsrc")

    @property
    def appl_clauses(self) -> Tuple[Clause, ...]:
        return self.clauses_of_type("appl")

    @property
    def user_clauses(self) -> Tuple[Clause, ...]:
        return self.clauses_of_type("user")

    def get(self, key: str, default: Any = None) -> Any:
        """Value of the clause with dotted ``key``, or ``default``."""
        for c in self.clauses:
            if c.key == key:
                return c.value
        return default

    @property
    def login(self) -> str:
        return str(self.get("punch.user.login", ""))

    @property
    def access_group(self) -> str:
        return str(self.get("punch.user.accessgroup", "public"))

    @property
    def expected_cpu_use(self) -> Optional[float]:
        v = self.get("punch.appl.expectedcpuuse")
        return None if v is None else float(v)

    # -- matching -----------------------------------------------------------------

    def matches_machine(self, record: MachineRecord) -> bool:
        """Do the ``rsrc`` clauses all hold against the machine's view?"""
        view = record.attribute_view()
        return all(c.matches(view.get(c.name)) for c in self.rsrc_clauses)

    # -- evolution -----------------------------------------------------------------

    def with_routing(self, *, ttl: Optional[int] = None,
                     visited: Optional[Iterable[str]] = None) -> "Query":
        """Copy with updated delegation state."""
        return Query(
            clauses=self.clauses,
            query_id=self.query_id,
            origin=self.origin,
            component_index=self.component_index,
            component_count=self.component_count,
            ttl=self.ttl if ttl is None else ttl,
            visited_pool_managers=tuple(visited)
            if visited is not None else self.visited_pool_managers,
            submitted_at=self.submitted_at,
        )

    def with_identity(self, *, query_id: int, origin: str,
                      submitted_at: float, component_index: int = 0,
                      component_count: int = 1, ttl: Optional[int] = None
                      ) -> "Query":
        return Query(
            clauses=self.clauses,
            query_id=query_id,
            origin=origin,
            component_index=component_index,
            component_count=component_count,
            ttl=self.ttl if ttl is None else ttl,
            visited_pool_managers=self.visited_pool_managers,
            submitted_at=submitted_at,
        )

    def __str__(self) -> str:
        return "\n".join(str(c) for c in sorted(self.clauses))


@dataclass(frozen=True)
class Allocation:
    """What the client gets back: "an IP address, a TCP port number, and a
    session-specific access key" (Section 2), plus the shadow account."""

    machine_name: str
    address: str
    execution_unit_port: int
    access_key: str
    shadow_account: Optional[str] = None
    pool_name: str = ""
    pool_instance: int = -1

    def __str__(self) -> str:
        return (f"{self.machine_name} ({self.address}:"
                f"{self.execution_unit_port}, key={self.access_key[:8]}...)")


@dataclass(frozen=True)
class QueryResult:
    """Terminal outcome of one basic query component."""

    query_id: int
    component_index: int
    component_count: int
    allocation: Optional[Allocation] = None
    error: Optional[str] = None
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.allocation is not None
