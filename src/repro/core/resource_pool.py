"""Resource pools: dynamically created active objects (Section 5.2.3).

A pool aggregates machines matching the criteria encoded in its name and
answers queries with an allocated machine.  This module is *pure logic* —
no transport, no clock — so the identical class backs three deployments:

- the in-process :class:`~repro.core.pipeline.ActYPService` facade,
- the DES deployment (:mod:`repro.deploy.simulated`), which charges the
  configured service times around these calls, and
- the asyncio live runtime (:mod:`repro.runtime`).

Lifecycle, following the paper:

1. ``initialize()`` — "walks the 'white pages' database for machines that
   match the criteria encoded within its name", loads them into a local
   cache, and "marks them as taken within the main database".  The walk
   executes the exemplar query's compiled plan
   (:func:`repro.core.plan.compile_plan`) against the database's
   attribute indexes, so it scales with the number of *matching*
   machines, not the database size.
2. Registration with the local directory service is the *caller's* job
   (the pool manager created us and owns the directory).
3. ``select_machine()`` / ``allocate()`` — scheduling processes "sort
   machines within the object's cache using specified criteria" and answer
   queries.  Linear scan by default; the paper's Figure 6 curves "are
   simply a function of the linear search algorithms employed".  Behind
   ``ResourcePoolConfig.linear_scan=False`` the same calls are served by
   an :class:`~repro.core.scheduler.IndexedPoolScheduler` — the cache is
   kept permanently in (bias tier, objective key, index) order and only
   re-keyed for the machine whose record changed — with selection
   semantics identical to the linear walk.
4. ``release()`` — the network desktop relinquishes resources when a run
   completes.

Replication (Figure 8): "scheduling integrity is maintained by introducing
an instance-specific bias (e.g., instance 'i' of a given pool 'prefers'
every 'i'th machine in the pool)" — implemented in :meth:`_bias_tier`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import QueryPlan, compile_plan, machine_admissible
from repro.core.query import Allocation, Query
from repro.core.scheduler import IndexedPoolScheduler
from repro.core.scheduling import SchedulingObjective, get_objective
from repro.core.signature import PoolName
from repro.config import ResourcePoolConfig
from repro.database.policy import PolicyRegistry
from repro.database.records import MachineRecord
from repro.database.shadow import ShadowAccount, ShadowAccountRegistry
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import NoResourceAvailableError, PoolCreationError

__all__ = ["ResourcePool", "ActiveRun"]


@dataclass(frozen=True)
class ActiveRun:
    """Book-keeping for one allocation until the desktop releases it."""

    access_key: str
    machine_name: str
    shadow_username: Optional[str]
    query_id: int
    allocated_at: float
    shadow_account: Optional["ShadowAccount"] = None


class ResourcePool:
    """One instance of a resource pool.

    Parameters
    ----------
    name:
        The pool's signature+identifier name.
    database:
        The white-pages database to walk at initialisation — a plain
        :class:`WhitePagesDatabase` or the sharded facade
        (:class:`~repro.database.sharding.ShardedWhitePagesDatabase`);
        the pool only uses the duck-typed surface shared by both.
    instance_number:
        This replica's number (0-based).
    replica_count:
        Total number of replicas sharing the pool name; together with
        ``instance_number`` this sets the selection bias.
    config:
        Objective, scheduler process count, scan mode.
    shadow_registry / policy_registry:
        Optional; when present, allocation claims shadow accounts and
        enforces per-machine usage policies.
    """

    def __init__(
        self,
        name: PoolName,
        database: WhitePagesDatabase,
        *,
        instance_number: int = 0,
        replica_count: int = 1,
        config: Optional[ResourcePoolConfig] = None,
        shadow_registry: Optional[ShadowAccountRegistry] = None,
        policy_registry: Optional[PolicyRegistry] = None,
        exemplar_query: Optional[Query] = None,
    ):
        if replica_count < 1 or not (0 <= instance_number):
            raise PoolCreationError(
                f"bad replica numbering {instance_number}/{replica_count}"
            )
        self.name = name
        self.database = database
        self.instance_number = instance_number
        self.replica_count = replica_count
        self.config = (config or ResourcePoolConfig()).validated()
        self.objective: SchedulingObjective = get_objective(self.config.objective)
        self.shadow_registry = shadow_registry
        self.policy_registry = policy_registry
        #: The query whose rsrc clauses encode this pool's criteria.  Pools
        #: are created in response to a concrete query (Section 5.2.2), so
        #: the exemplar is how the membership constraint is evaluated.
        self.exemplar_query = exemplar_query
        #: The membership constraint compiled once, executed against the
        #: white pages' attribute indexes on every walk.
        self.plan: QueryPlan = compile_plan(exemplar_query)
        self._cache: List[str] = []        # machine names, stable order
        #: Indexed in-pool scheduler (``linear_scan=False``); attached at
        #: initialisation, detached on destroy/split.
        self._scheduler: Optional[IndexedPoolScheduler] = None
        self._runs: Dict[str, ActiveRun] = {}
        self._initialized = False
        self.queries_served = 0
        self.allocation_failures = 0
        #: Simulated/wall time of the last allocate or release; drives
        #: idle-pool reclamation (see :class:`PoolJanitor`).
        self.last_activity: float = 0.0

    # -- lifecycle -----------------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._initialized

    @property
    def size(self) -> int:
        return len(self._cache)

    @property
    def cache(self) -> Tuple[str, ...]:
        return tuple(self._cache)

    @property
    def active_runs(self) -> int:
        return len(self._runs)

    def initialize(self, *, max_machines: Optional[int] = None) -> int:
        """Walk the white pages, take matching machines into the cache.

        Returns the number of machines aggregated.  Raises
        :class:`PoolCreationError` when called twice.  A pool that
        aggregates zero machines is legal here; the pool *manager* treats
        that as creation failure and falls back to delegation.
        """
        if self._initialized:
            raise PoolCreationError(f"pool {self.name} already initialized")
        matches = self.database.match(self.plan)
        names = [m.machine_name for m in matches]
        if max_machines is not None:
            names = names[:max_machines]
        taken = self.database.take_all(names, self.name.full)
        self._cache = list(taken)
        self._initialized = True
        self._attach_scheduler()
        return len(self._cache)

    def adopt(self, machine_names: Sequence[str]) -> int:
        """Directly take a given machine list (used by split/rebalance)."""
        if self._initialized:
            raise PoolCreationError(f"pool {self.name} already initialized")
        taken = self.database.take_all(machine_names, self.name.full)
        self._cache = list(taken)
        self._initialized = True
        self._attach_scheduler()
        return len(self._cache)

    def destroy(self) -> int:
        """Release every cached machine back to the white pages."""
        released = self.database.release_pool(self.name.full)
        self._cache.clear()
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        self._initialized = False
        return released

    def _attach_scheduler(self) -> None:
        if not self.config.linear_scan:
            self._scheduler = IndexedPoolScheduler(
                self.database, self._cache, self.objective,
                tier_of=self._bias_tier,
                max_query_classes=self.config.max_query_classes)

    # -- scheduling -----------------------------------------------------------------

    def _bias_tier(self, index: int) -> int:
        """Replica bias: 0 for "our" machines, 1 for the rest."""
        if self.replica_count <= 1:
            return 0
        return 0 if index % self.replica_count == \
            self.instance_number % self.replica_count else 1

    def _admissible(self, record: MachineRecord, query: Query) -> bool:
        # The shared engine check (health, services, load ceiling, access
        # groups, tool groups, usage policy) — identical for every
        # deployment and baseline.
        return machine_admissible(record, query,
                                  policy_registry=self.policy_registry)

    def _indexed_usable(self, query: Optional[Query]) -> bool:
        """Can the maintained rank index answer this query's ordering?

        Query-insensitive objectives are always indexable.  A
        query-sensitive objective (predicted-footprint placement) is
        indexable when it declares a ``query_class`` decomposition — the
        scheduler then serves it from a per-query-class rank cache; one
        without the decomposition falls back to the linear walk whenever
        a query is present, since the base order (keyed ``query=None``)
        would change selection semantics.
        """
        return self._scheduler is not None \
            and self._scheduler.supports_query(query)

    def _linear_order(self, query: Optional[Query]) -> List[Tuple[int, str]]:
        """The paper's linear scan: every call touches the whole cache,
        which is what gives Figure 6 its linear response-time growth."""
        keyed = []
        for idx, name in enumerate(self._cache):
            record = self.database.get(name)
            keyed.append(
                (self._bias_tier(idx), self.objective.rank_key(record, query),
                 idx, name)
            )
        keyed.sort(key=lambda t: (t[0], t[1], t[2]))
        return [(idx, name) for _tier, _key, idx, name in keyed]

    def scan_order(self, query: Optional[Query] = None) -> List[Tuple[int, str]]:
        """Cache indices+names in scheduling order (bias tier, objective).

        Linear mode re-sorts the cache per call (the Figure 6 cost);
        indexed mode reads the incrementally-maintained order.
        """
        if self._indexed_usable(query):
            return self._scheduler.order(query)
        return self._linear_order(query)

    def _iter_order(self, query: Optional[Query]):
        """Scheduling order as an iterator; lazy in indexed mode so
        selection stops at the first admissible machine."""
        if self._indexed_usable(query):
            return self._scheduler.iter_order(query)
        return iter(self._linear_order(query))

    def _select(self, query: Query,
                exclude: Optional[Sequence[str]] = None,
                order: Optional[Sequence[Tuple[int, str]]] = None
                ) -> Optional[MachineRecord]:
        excluded = set(exclude) if exclude else ()
        for _idx, name in (order if order is not None
                           else self._iter_order(query)):
            if name in excluded:
                continue
            record = self.database.get(name)
            if self._admissible(record, query):
                return record
        return None

    def select_machine(self, query: Query,
                       exclude: Optional[Sequence[str]] = None
                       ) -> Optional[MachineRecord]:
        """Best admissible machine for ``query``, or None.

        ``exclude`` names machines to skip (used by co-allocation to keep
        the batch on distinct hosts).
        """
        return self._select(query, exclude)

    # -- allocation -----------------------------------------------------------------

    def allocate(self, query: Query, now: float = 0.0,
                 exclude: Optional[Sequence[str]] = None, *,
                 _order: Optional[Sequence[Tuple[int, str]]] = None
                 ) -> Allocation:
        """Select a machine, claim a shadow account, mint an access key.

        The machine's dynamic load/job fields are bumped so subsequent
        selections see the placement (the monitor will later re-measure).
        Raises :class:`NoResourceAvailableError` when no admissible
        machine exists.  ``_order`` is the co-allocation fast path: a
        scheduling order the caller already computed (valid because the
        only records that change during a batch are the batch's own
        allocations, which are excluded anyway).
        """
        self.queries_served += 1
        self.last_activity = max(self.last_activity, now)
        record = self._select(query, exclude, order=_order)
        if record is None:
            self.allocation_failures += 1
            raise NoResourceAvailableError(
                f"pool {self.name} ({self.size} machines) has no admissible "
                f"machine for query {query.query_id}"
            )
        access_key = secrets.token_hex(16)
        shadow_username: Optional[str] = None
        shadow_account: Optional[ShadowAccount] = None
        if record.shared_account is not None:
            # Short "safe" jobs run in the shared account (Section 4.1 fn 3).
            shadow_username = record.shared_account
        elif self.shadow_registry is not None:
            pool = self.shadow_registry.ensure_pool(record.machine_name)
            shadow_account = pool.allocate(access_key)
            shadow_username = shadow_account.username
        self.database.update_dynamic(
            record.machine_name,
            current_load=record.current_load + 1.0 / record.num_cpus,
            active_jobs=record.active_jobs + 1,
        )
        self._runs[access_key] = ActiveRun(
            access_key=access_key,
            machine_name=record.machine_name,
            shadow_username=shadow_username,
            query_id=query.query_id,
            allocated_at=now,
            shadow_account=shadow_account,
        )
        return Allocation(
            machine_name=record.machine_name,
            address=record.machine_name,
            execution_unit_port=record.execution_unit_port,
            access_key=access_key,
            shadow_account=shadow_username,
            pool_name=self.name.full,
            pool_instance=self.instance_number,
        )

    def is_idle(self, now: float, idle_timeout_s: float) -> bool:
        """No active runs and no activity for ``idle_timeout_s``."""
        return not self._runs and (now - self.last_activity) >= idle_timeout_s

    def allocate_many(self, query: Query, count: int, now: float = 0.0
                      ) -> List[Allocation]:
        """Co-allocation extension: claim ``count`` distinct machines
        atomically (all-or-nothing).

        The paper's prototype did not support co-allocation (Section 8
        contrasts with Globus); this implements it at the pool level so
        parallel jobs can be placed.  On failure nothing is held.
        """
        if count < 1:
            raise NoResourceAvailableError(f"co-allocation count {count} < 1")
        # Hoist the order computation out of the per-count loop: within a
        # batch, the only records that change are the batch's own
        # allocations, and those are excluded from later picks — so one
        # order, walked with a fresh admissibility check per pick, selects
        # exactly the machines a per-pick recomputation would.  (Indexed
        # mode maintains its order incrementally; nothing to hoist.)
        order = None if self._indexed_usable(query) else self.scan_order(query)
        allocations: List[Allocation] = []
        try:
            for _ in range(count):
                allocations.append(self.allocate(
                    query, now=now,
                    exclude=[a.machine_name for a in allocations],
                    _order=order))
        except NoResourceAvailableError:
            for alloc in allocations:
                self.release(alloc.access_key)
            raise NoResourceAvailableError(
                f"pool {self.name} could not co-allocate {count} machines "
                f"({len(allocations)} available)"
            )
        return allocations

    def release(self, access_key: str) -> None:
        """Return the machine and shadow account of a completed run."""
        run = self._runs.pop(access_key, None)
        if run is None:
            raise NoResourceAvailableError(
                f"unknown access key for release in pool {self.name}"
            )
        record = self.database.get(run.machine_name)
        self.database.update_dynamic(
            run.machine_name,
            current_load=max(0.0, record.current_load - 1.0 / record.num_cpus),
            active_jobs=max(0, record.active_jobs - 1),
        )
        if self.shadow_registry is not None and run.shadow_account is not None:
            pool = self.shadow_registry.pool_for(run.machine_name)
            pool.release(run.shadow_account, access_key)

    # -- splitting (Figure 7) -----------------------------------------------------------

    def split(self, parts: int) -> List["ResourcePool"]:
        """Split this pool into ``parts`` fragments of ~equal size.

        The fragments share our name's signature but extend the identifier
        with a fragment tag; machines are handed over round-robin so load
        heterogeneity spreads evenly.  This pool is destroyed.
        """
        if parts < 2:
            raise PoolCreationError(f"split needs parts >= 2, got {parts}")
        if not self._initialized:
            raise PoolCreationError("cannot split an uninitialized pool")
        if self._runs:
            raise PoolCreationError("cannot split a pool with active runs")
        shards: List[List[str]] = [[] for _ in range(parts)]
        for i, machine in enumerate(self._cache):
            shards[i % parts].append(machine)
        self.destroy()
        fragments: List[ResourcePool] = []
        for i, shard in enumerate(shards):
            frag_name = PoolName(
                signature=self.name.signature,
                identifier=f"{self.name.identifier}#frag{i}of{parts}",
            )
            frag = ResourcePool(
                frag_name, self.database,
                instance_number=0, replica_count=1,
                config=self.config,
                shadow_registry=self.shadow_registry,
                policy_registry=self.policy_registry,
                exemplar_query=self.exemplar_query,
            )
            frag.adopt(shard)
            fragments.append(frag)
        return fragments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResourcePool({self.name.full!r}, "
                f"instance={self.instance_number}/{self.replica_count}, "
                f"size={self.size})")
