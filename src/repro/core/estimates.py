"""Reference-machine-qualified CPU estimates (the paper's footnote 5).

"The current protocol assumes the existence of a 'reference' machine for
time-related estimates.  In the future, the protocol will be extended to
include relevant meta-information — for example, one could specify the
expected CPU time as ``1000s@sun.iu:sparc:ultra-510:333MHz`` and include
multiple estimates when appropriate."

This module implements that future extension: a :class:`CpuEstimate`
carries one or more ``(seconds, reference)`` pairs; references declare
their effective speed; :func:`normalise_for` converts an estimate to an
expected duration on a *target* machine by speed ratio, preferring the
reference whose architecture matches the target.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.database.records import MachineRecord
from repro.errors import QuerySyntaxError

__all__ = ["ReferenceMachine", "CpuEstimate", "parse_cpu_estimate",
           "normalise_for"]


@dataclass(frozen=True)
class ReferenceMachine:
    """A named calibration point: ``site:arch:model:clock``."""

    site: str
    arch: str
    model: str
    clock_mhz: float
    #: Effective speed in the same units as MachineRecord.effective_speed.
    effective_speed: float

    @property
    def spec(self) -> str:
        return f"{self.site}:{self.arch}:{self.model}:{self.clock_mhz:g}MHz"


#: Well-known references; administrators extend this table.  Speeds are
#: SPECfp-like, consistent with repro.fleet's 200-500 range.
KNOWN_REFERENCES: Dict[str, ReferenceMachine] = {
    "sun.iu:sparc:ultra-510:333MHz": ReferenceMachine(
        "sun.iu", "sparc", "ultra-510", 333.0, effective_speed=300.0),
    "purdue:sparc:ultra-60:450MHz": ReferenceMachine(
        "purdue", "sparc", "ultra-60", 450.0, effective_speed=400.0),
    "upc:alpha:es40:524MHz": ReferenceMachine(
        "upc", "alpha", "es40", 524.0, effective_speed=450.0),
    "reference": ReferenceMachine(
        "default", "any", "reference", 300.0, effective_speed=300.0),
}

_ESTIMATE_RE = re.compile(
    r"^\s*(?P<value>[0-9]+(?:\.[0-9]+)?)\s*s?\s*(?:@(?P<ref>[^,\s]+))?\s*$"
)


@dataclass(frozen=True)
class CpuEstimate:
    """Expected CPU seconds, possibly against several references."""

    #: ``(seconds, reference)`` alternatives, most specific first.
    alternatives: Tuple[Tuple[float, ReferenceMachine], ...]

    @property
    def primary_seconds(self) -> float:
        return self.alternatives[0][0]

    def __str__(self) -> str:
        return ",".join(f"{sec:g}s@{ref.spec}"
                        for sec, ref in self.alternatives)


def parse_cpu_estimate(
    text: str,
    references: Optional[Dict[str, ReferenceMachine]] = None,
) -> CpuEstimate:
    """Parse ``1000``, ``1000s``, ``1000s@<ref>``, or a comma list.

    Unqualified values are taken against the default ``reference``
    machine, preserving the paper's current-protocol behaviour.
    """
    refs = references if references is not None else KNOWN_REFERENCES
    parts = [p for p in text.split(",") if p.strip()]
    if not parts:
        raise QuerySyntaxError(f"empty CPU estimate {text!r}")
    alternatives = []
    for part in parts:
        m = _ESTIMATE_RE.match(part)
        if not m:
            raise QuerySyntaxError(f"cannot parse CPU estimate {part!r}")
        seconds = float(m.group("value"))
        ref_name = m.group("ref") or "reference"
        ref = refs.get(ref_name)
        if ref is None:
            raise QuerySyntaxError(
                f"unknown reference machine {ref_name!r} in estimate"
            )
        alternatives.append((seconds, ref))
    return CpuEstimate(alternatives=tuple(alternatives))


def normalise_for(estimate: CpuEstimate, machine: MachineRecord) -> float:
    """Expected duration of the run on ``machine``, in seconds.

    Chooses the alternative whose reference architecture matches the
    machine's ``arch`` admin parameter when one exists (the "multiple
    estimates when appropriate" case); otherwise uses the primary.
    Scaling is by effective-speed ratio.
    """
    arch = (machine.parameter("arch") or "").lower()
    chosen: Optional[Tuple[float, ReferenceMachine]] = None
    for seconds, ref in estimate.alternatives:
        if ref.arch.lower() == arch:
            chosen = (seconds, ref)
            break
    if chosen is None:
        chosen = estimate.alternatives[0]
    seconds, ref = chosen
    if machine.effective_speed <= 0:  # pragma: no cover - record validates
        return seconds
    return seconds * ref.effective_speed / machine.effective_speed
