"""Query managers: the pipeline's entry and exit stage (Section 5.2.1).

On the way in, a query manager translates the client's native payload,
decomposes composites into basic components, and selects a pool manager
for each component ("on the basis of the values of one or more of the
parameters specified within queries ... also possible ... in random or
round-robin order").  On the way out (possibly a different query-manager
instance), component results are reintegrated and returned to the client.

Pure logic, like the other stages: :meth:`QueryManager.admit` returns the
list of ``(pool_manager, component)`` dispatches, and
:meth:`QueryManager.complete_component` feeds reintegration.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import QueryManagerConfig
from repro.core.decompose import ReintegrationBuffer, decompose
from repro.core.language import CompositeQuery, QueryLanguage, default_language
from repro.core.qos import RedundantFanout
from repro.core.query import Query, QueryResult
from repro.core.translation import TranslatorRegistry
from repro.errors import ConfigError, PipelineError
from repro.net.address import Endpoint

__all__ = ["Dispatch", "FinishedQueryLRU", "QueryManager"]


class FinishedQueryLRU:
    """Bounded LRU set of recently finished query ids.

    Very late duplicate results (redundant fan-out over a slow WAN path)
    can arrive after a query's reintegration buffer is torn down; this
    set lets the manager recognise them instead of erroring.  An
    explicit :class:`~collections.OrderedDict` evicts the
    *least-recently-touched* id under a hard ``limit`` (re-adding an id
    refreshes its recency) — membership is O(1) and the structure can
    never grow unboundedly, whatever the id arrival order.
    """

    def __init__(self, limit: int = 4096):
        if limit < 1:
            raise ConfigError(f"LRU limit must be >= 1, got {limit}")
        self.limit = limit
        self._ids: "OrderedDict[int, None]" = OrderedDict()

    def add(self, query_id: int) -> None:
        if query_id in self._ids:
            self._ids.move_to_end(query_id)
        else:
            self._ids[query_id] = None
            while len(self._ids) > self.limit:
                self._ids.popitem(last=False)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def oldest(self) -> Optional[int]:
        """The id next in line for eviction (None when empty)."""
        return next(iter(self._ids), None)


@dataclass(frozen=True)
class Dispatch:
    """One basic component headed for one pool manager.

    With redundant fan-out (Section 6's higher-QoS mode) the same
    component is dispatched to several pool managers; ``duplicate_index``
    distinguishes the copies.
    """

    pool_manager: Endpoint
    component: Query
    duplicate_index: int = 0


class QueryManager:
    """One query-manager instance.

    Parameters
    ----------
    name:
        Instance name (diagnostics).
    pool_managers:
        The pool-manager endpoints this instance may select among.
    selection_rules:
        For the ``"parameter"`` policy: ``{parameter_value: [endpoints]}``,
        e.g. ``{"sun": [pm1, pm2], "hp": [pm3]}`` ("a query manager can be
        configured to select one set of pool managers for sun machines and
        a different set for hp machines").
    """

    def __init__(
        self,
        name: str,
        pool_managers: Sequence[Endpoint],
        *,
        config: Optional[QueryManagerConfig] = None,
        language: Optional[QueryLanguage] = None,
        translators: Optional[TranslatorRegistry] = None,
        selection_rules: Optional[Dict[str, Sequence[Endpoint]]] = None,
        reintegration_policy: str = "first_match",
        default_ttl: int = 4,
        fanout: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        if not pool_managers:
            raise ConfigError("query manager needs at least one pool manager")
        if fanout < 1:
            raise ConfigError("fanout must be >= 1")
        self.name = name
        self.pool_managers = list(pool_managers)
        self.config = (config or QueryManagerConfig()).validated()
        self.language = language or default_language()
        self.translators = translators or TranslatorRegistry(self.language)
        self.selection_rules = {
            k: list(v) for k, v in (selection_rules or {}).items()
        }
        self.reintegration_policy = reintegration_policy
        self.default_ttl = default_ttl
        self.fanout = RedundantFanout(k=fanout)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._query_ids = itertools.count(1)
        self._round_robin = itertools.cycle(range(len(self.pool_managers)))
        self._buffers: Dict[int, ReintegrationBuffer] = {}
        #: (query_id, component_index) pairs already offered — duplicate
        #: responses from redundant fan-out are dropped, and their
        #: allocations flagged for release.
        self._offered: Set[Tuple[int, int]] = set()
        #: Recently finished query ids (bounded LRU), so very late
        #: duplicates after buffer teardown are recognised rather than
        #: erroring.
        self._finished = FinishedQueryLRU()
        self.queries_admitted = 0
        self.components_dispatched = 0
        self.redundant_results = 0

    # -- admission -----------------------------------------------------------------

    def admit(self, payload: Any, *, format_name: str = "punch",
              origin: str = "", now: float = 0.0) -> Tuple[int, List[Dispatch]]:
        """Translate, decompose, and route one client query.

        Returns ``(query_id, dispatches)``; a reintegration buffer is
        opened for the query and must be fed via
        :meth:`complete_component`.
        """
        composite = self.translators.translate(payload, format_name)
        return self.admit_composite(composite, origin=origin, now=now)

    def admit_composite(self, composite: CompositeQuery, *, origin: str = "",
                        now: float = 0.0) -> Tuple[int, List[Dispatch]]:
        query_id = next(self._query_ids)
        components = decompose(
            composite, query_id=query_id, origin=origin,
            submitted_at=now, ttl=self.default_ttl,
        )
        self._buffers[query_id] = ReintegrationBuffer(
            query_id=query_id,
            component_count=len(components),
            policy=self.reintegration_policy,
        )
        dispatches: List[Dispatch] = []
        for c in components:
            if self.fanout.k == 1:
                targets = [self.select_pool_manager(c)]
            else:
                # Section 6: "simultaneously forwarding a given query to
                # multiple pool managers ... and utilizing the best
                # response" — distinct targets per duplicate.
                targets = self.fanout.choose(self.pool_managers, self.rng)
            for dup, target in enumerate(targets):
                dispatches.append(Dispatch(
                    pool_manager=target, component=c, duplicate_index=dup,
                ))
        self.queries_admitted += 1
        self.components_dispatched += len(dispatches)
        return query_id, dispatches

    # -- pool-manager selection --------------------------------------------------------

    def select_pool_manager(self, component: Query) -> Endpoint:
        policy = self.config.selection_policy
        if policy == "round_robin":
            return self.pool_managers[next(self._round_robin)]
        if policy == "parameter":
            key = f"punch.rsrc.{self.config.selection_parameter}"
            value = component.get(key)
            candidates = self.selection_rules.get(
                str(value).lower() if value is not None else "",
                self.pool_managers,
            )
            if not candidates:
                candidates = self.pool_managers
            idx = int(self.rng.integers(0, len(candidates)))
            return candidates[idx]
        # "random"
        idx = int(self.rng.integers(0, len(self.pool_managers)))
        return self.pool_managers[idx]

    # -- reintegration -----------------------------------------------------------------

    def complete_component(self, result: QueryResult
                           ) -> Optional[QueryResult]:
        """Feed one component's terminal result; returns the final result
        of the whole query once reintegration completes.

        Duplicate results (redundant fan-out) and results arriving after
        the query finished return ``None``; if such a result carries an
        allocation, the caller must release it.
        """
        key = (result.query_id, result.component_index)
        if key in self._offered or result.query_id in self._finished:
            self.redundant_results += 1
            return None
        buffer = self._buffers.get(result.query_id)
        if buffer is None:
            raise PipelineError(
                f"no reintegration buffer for query {result.query_id} "
                f"at query manager {self.name}"
            )
        self._offered.add(key)
        final = buffer.offer(result)
        if buffer.outstanding == 0:
            del self._buffers[result.query_id]
            self._offered -= {(result.query_id, i)
                              for i in range(buffer.component_count)}
            self._remember_finished(result.query_id)
        return final

    def _remember_finished(self, query_id: int) -> None:
        self._finished.add(query_id)

    def open_queries(self) -> int:
        return len(self._buffers)
