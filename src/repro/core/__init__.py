"""The paper's primary contribution: the ActYP resource-management pipeline.

Stages (Section 5.2), each independently replicable and distributable:

``client → QueryManager → PoolManager → ResourcePool → client``

- :mod:`~repro.core.query` / :mod:`~repro.core.language` — the hierarchical
  key-value query language (``punch.rsrc.arch = sun``).
- :mod:`~repro.core.plan` — the matchmaking engine's query half: the
  :class:`~repro.core.plan.ClauseSet` IR, plan compilation over the
  white pages' attribute indexes, and the shared admissibility check.
- :mod:`~repro.core.signature` — pool naming: signature + identifier from
  the sorted ``rsrc`` keys of a query.
- :mod:`~repro.core.query_manager` — translation, composite decomposition,
  pool-manager selection, result reintegration.
- :mod:`~repro.core.pool_manager` — query→pool mapping, pool creation,
  delegation with TTL and visited-list.
- :mod:`~repro.core.resource_pool` — dynamically created active objects
  holding machine caches; splitting and replication with instance bias.
- :mod:`~repro.core.scheduling` — pluggable scheduling objectives.
- :mod:`~repro.core.pipeline` — builders wiring a deployment together and
  the in-process :class:`~repro.core.pipeline.ActYPService` facade.
- :mod:`~repro.core.qos` — QoS modes from Section 6 (redundant fan-out,
  first-match composite handling).
"""

from repro.core.operators import Op
from repro.core.plan import (
    ClauseSet,
    QueryPlan,
    compile_plan,
    machine_admissible,
)
from repro.core.query import Clause, Query, QueryResult, Allocation
from repro.core.language import (
    QueryLanguage,
    punch_language,
    parse_query,
    compile_text,
)
from repro.core.signature import PoolName, pool_name_for
from repro.core.scheduling import SchedulingObjective, get_objective
from repro.core.pipeline import ActYPService, build_service

__all__ = [
    "Op",
    "Clause",
    "ClauseSet",
    "QueryPlan",
    "compile_plan",
    "machine_admissible",
    "Query",
    "QueryResult",
    "Allocation",
    "QueryLanguage",
    "punch_language",
    "parse_query",
    "compile_text",
    "PoolName",
    "pool_name_for",
    "SchedulingObjective",
    "get_objective",
    "ActYPService",
    "build_service",
]
