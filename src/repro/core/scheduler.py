"""Indexed in-pool scheduler: incrementally-maintained scheduling order.

The paper's pool scheduler "sorts machines within the object's cache
using specified criteria" on every query — the linear scan whose cost is
Figure 6's subject matter.  This module is the real implementation behind
the *indexed* ablation (``ResourcePoolConfig.linear_scan=False``): the
cache is kept in scheduling order permanently, so answering a query is a
walk of an already-sorted structure that stops at the first admissible
machine instead of an O(pool) re-sort.

Structure
---------
One :class:`_RankOrder` per *query class*.  A rank order holds one sorted
list of ``(rank_key, cache_index, machine_name)`` per bias tier
(replication keeps two tiers: "our" machines and the rest; see
:meth:`ResourcePool._bias_tier`).  Concatenated in tier order the lists
reproduce exactly the ``(tier, key, index)`` order the linear scan
computes, because the linear sort is lexicographic over those fields.

- The **base order** (query class ``None``) ranks with ``query=None``;
  it serves every query under a query-insensitive objective
  (:attr:`~repro.core.scheduling.SchedulingObjective.query_sensitive`
  False — the default ``least_load`` among them).
- **Query-class orders** serve query-sensitive objectives
  (``best_fit_memory``, ``min_response_time``): the objective factors
  its key into a (machine-static, query-class) decomposition by
  declaring :attr:`~repro.core.scheduling.SchedulingObjective
  .query_class` — a function mapping a query to a hashable class key
  such that two queries with the same key rank every record
  identically.  The first query of a class builds its order (one
  O(n log n) sort); subsequent queries of the same class walk the
  maintained lists.  At most :data:`MAX_QUERY_CLASSES` class orders are
  kept (LRU); an evicted class simply rebuilds on next use.

Maintenance is driven by the white-pages per-machine subscription map
(:meth:`~repro.database.whitepages.WhitePagesDatabase.subscribe`): the
scheduler subscribes once for exactly the machines in its cache, so an
``update_dynamic`` of any *other* machine never reaches it — with
thousands of pools, a record change notifies only the O(1) pools that
cache that machine.  When a cached machine's record is replaced, every
maintained order re-keys only that machine — two bisects, O(log n) plus
a memmove, per order — so a monitoring refresh or an allocation's load
bump never triggers a cache walk.

Selection semantics are *identical* to linear mode in every case: a
query-sensitive objective without a declared ``query_class`` still falls
back to the pool's linear walk whenever a query is present.

Concurrency: the tier lists are only touched under the white-pages
registry lock (the listener already runs inside it; builds re-enter it),
while readers iterate *published* order lists that are replaced, never
mutated in place — so a monitoring thread refreshing records cannot tear
a selection in progress.  Allocation itself follows the pool's existing
single-writer discipline.
"""

from __future__ import annotations

import math
import threading
from bisect import insort, bisect_left
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.core.scheduling import SchedulingObjective
from repro.database.records import MachineRecord
from repro.database.whitepages import WhitePagesDatabase
from repro.errors import UnknownMachineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query import Query

__all__ = ["IndexedPoolScheduler", "MAX_QUERY_CLASSES"]

#: ``(rank_key, cache_index, machine_name)`` — compares exactly like the
#: linear scan's ``(key, idx, name)`` sort fields within one bias tier.
_Entry = Tuple[Tuple[float, ...], int, str]

#: Default query-class orders kept per scheduler (LRU).  Each order
#: costs O(pool) memory and one re-key per record change; workloads
#: normally reuse a handful of predicted-footprint classes, so a small
#: cap bounds write amplification without evicting live classes.
#: Per-pool override: :attr:`repro.config.ResourcePoolConfig
#: .max_query_classes` (a workload with many live footprint classes
#: would thrash the default).
MAX_QUERY_CLASSES = 8


def _safe_key(key: Tuple[float, ...]) -> Tuple[float, ...]:
    """Map NaN components to +inf so the bisect order stays total.

    The linear path's ``list.sort`` over NaN keys is unspecified; pinning
    NaN to "rank last" keeps the index structurally sound without
    changing any specified ordering.
    """
    if any(isinstance(k, float) and math.isnan(k) for k in key):
        return tuple(math.inf if isinstance(k, float) and math.isnan(k)
                     else k for k in key)
    return key


class _RankOrder:
    """One maintained scheduling order (tier lists under one rank fn).

    All mutation happens under the white-pages registry lock; readers
    use the published ``order_cache`` (replaced, never mutated) or the
    version-checked live walk.
    """

    __slots__ = ("rank_of", "entries", "tiers", "tier_order",
                 "order_cache", "version", "rekeys")

    def __init__(self, rank_of: Callable[[MachineRecord], Tuple[float, ...]],
                 database: WhitePagesDatabase,
                 slots: Dict[str, Tuple[int, int]]):
        self.rank_of = rank_of
        #: name -> its current entry (absent while deleted from registry).
        self.entries: Dict[str, _Entry] = {}
        #: tier number -> sorted entries; walked in ascending tier order.
        self.tiers: Dict[int, List[_Entry]] = {}
        #: Materialised ``(idx, name)`` order; invalidated by any re-key.
        #: Published lists are replaced, never mutated — readers holding
        #: one can always finish iterating it safely.
        self.order_cache: Optional[List[Tuple[int, str]]] = None
        #: Bumped (under the registry lock) on every structural change;
        #: lazy iteration uses it to detect — and restart after — a
        #: concurrent mutation instead of walking a torn list.
        self.version = 0
        self.rekeys = 0
        # Caller holds the registry lock; machines deleted from the
        # registry (broken state the linear path would fault on) are
        # simply absent until re-registered — matching what maintenance
        # does to an order that existed when the deletion happened.
        for name, (tier, idx) in slots.items():
            try:
                record = database.get(name)
            except UnknownMachineError:
                continue
            key = _safe_key(rank_of(record))
            entry: _Entry = (key, idx, name)
            self.tiers.setdefault(tier, []).append(entry)
            self.entries[name] = entry
        for entries in self.tiers.values():
            entries.sort()
        self.tier_order = sorted(self.tiers)

    # -- maintenance ----------------------------------------------------------

    def on_change(self, name: str, slot: Tuple[int, int],
                  record: Optional[MachineRecord]) -> None:
        """Re-rank ``name``; runs under the owning shard's registry lock
        plus the scheduler mutex."""
        tier, idx = slot
        entries = self.tiers.setdefault(tier, [])
        if tier not in self.tier_order:
            self.tier_order = sorted(self.tiers)
        entry = self.entries.get(name)
        if record is None:
            # Cached machine deleted from the registry — drop it from the
            # order (and restore it if the machine is ever re-registered).
            if entry is not None:
                self._remove_entry(entries, entry)
                del self.entries[name]
                self.order_cache = None
                self.version += 1
            return
        new_key = _safe_key(self.rank_of(record))
        if entry is not None:
            if new_key == entry[0]:
                return  # rank unchanged (e.g. memory-only refresh under least_load)
            self._remove_entry(entries, entry)
        new_entry: _Entry = (new_key, idx, name)
        insort(entries, new_entry)
        self.entries[name] = new_entry
        self.order_cache = None
        self.version += 1
        self.rekeys += 1

    @staticmethod
    def _remove_entry(entries: List[_Entry], entry: _Entry) -> None:
        i = bisect_left(entries, entry)
        if i < len(entries) and entries[i] == entry:
            del entries[i]

    # -- order ----------------------------------------------------------------

    def snapshot(self, lock) -> List[Tuple[int, str]]:
        """The current order as a list that is never mutated in place.

        Rebuilding takes the scheduler mutex so the tier lists cannot be
        resorted mid-walk by a concurrent monitoring refresh; once
        published, a snapshot list is only ever *replaced*, so readers
        iterate it lock-free.
        """
        snapshot = self.order_cache
        if snapshot is None:
            with lock:
                snapshot = self.order_cache
                if snapshot is None:
                    snapshot = [
                        (idx, name)
                        for tier in self.tier_order
                        for _key, idx, name in self.tiers[tier]
                    ]
                    self.order_cache = snapshot
        return snapshot

    def iter_order(self, lock) -> Iterator[Tuple[int, str]]:
        """Lazily yield ``(cache_index, name)`` in scheduling order.

        ``select_machine`` stops at the first admissible machine, so a
        healthy pool answers in O(1) candidates instead of O(pool) —
        without materialising the order (which the pool's own allocation
        re-keys would invalidate every cycle).
        """
        cache = self.order_cache
        if cache is not None:
            return iter(cache)
        return self._iter_live(lock)

    def _iter_live(self, lock) -> Iterator[Tuple[int, str]]:
        """Walk the live tier lists, restarting if a concurrent record
        change mutates them mid-walk.

        List reads are memory-safe under the GIL; the version check (and
        the IndexError guard for a shrink between bound check and read)
        turns a torn walk into a restart — equivalent to the caller
        re-requesting a fresh scan order.  Persistent churn falls back
        to one consistent materialised snapshot.
        """
        for _attempt in range(3):
            version = self.version
            stale = False
            for tier in self.tier_order:
                entries = self.tiers[tier]
                i = 0
                while True:
                    if self.version != version:
                        stale = True
                        break
                    try:
                        _key, idx, name = entries[i]
                    except IndexError:
                        break  # end of tier (or shrunk: version catches it)
                    i += 1
                    yield (idx, name)
                    if self.version != version:
                        stale = True
                        break
                if stale:
                    break
            if not stale:
                return
        yield from self.snapshot(lock)


class IndexedPoolScheduler:
    """Keeps one pool cache permanently in scheduling order.

    Parameters
    ----------
    database:
        The white pages; subscribed to (per cached machine) for record
        changes until :meth:`close`.
    cache:
        The pool's machine names in cache order (fixed after
        initialisation; the cache index is the scheduling tie-breaker).
    objective:
        Ranking criterion.  The base order keys with ``query=None``;
        objectives declaring a ``query_class`` additionally get one
        maintained order per observed query class.
    tier_of:
        Maps a cache index to its replica-bias tier (0 = preferred).
    max_query_classes:
        LRU cap on maintained query-class orders (default
        :data:`MAX_QUERY_CLASSES`; pools pass
        :attr:`~repro.config.ResourcePoolConfig.max_query_classes`).

    The database may be a plain :class:`WhitePagesDatabase` or the
    sharded facade: a pool's cache can span shards, so the scheduler's
    own mutex — not the (per-shard) registry lock — protects the tier
    lists, and builds take ``database.exclusive()`` so no record change
    on *any* shard can slip between build and subscription.
    """

    def __init__(self, database: WhitePagesDatabase, cache: Sequence[str],
                 objective: SchedulingObjective,
                 tier_of: Callable[[int], int], *,
                 max_query_classes: int = MAX_QUERY_CLASSES):
        self.database = database
        self.objective = objective
        self.max_query_classes = max(1, int(max_query_classes))
        #: Protects the maintained orders.  Listeners on different
        #: shards of a sharded database run under different registry
        #: locks, so the registry lock alone cannot serialise them
        #: against each other or against builds.  Lock order everywhere:
        #: registry/shard locks first, this mutex second.
        self._mutex = threading.RLock()
        #: name -> (tier, cache index): fixed pool membership, so a
        #: machine removed from the registry and later re-registered can
        #: be restored to its slot in the order.
        self._slots: Dict[str, Tuple[int, int]] = {
            name: (tier_of(idx), idx) for idx, name in enumerate(cache)
        }
        #: query class key -> maintained order, LRU by last use.  Only
        #: populated for objectives that declare ``query_class``.
        self._classes: "OrderedDict[Hashable, _RankOrder]" = OrderedDict()
        # Exclusive hold (the registry lock; every shard lock when
        # sharded) serialises the build against concurrent record
        # changes; subscribing inside the same hold means no change can
        # slip between build and subscription.
        with database.exclusive():
            with self._mutex:
                self._base = _RankOrder(
                    lambda record: objective.rank_key(record, None),
                    database, self._slots)
                database.subscribe(self._slots, self._on_record_change)

    # -- maintenance ----------------------------------------------------------

    @property
    def rekeys(self) -> int:
        """Base-order re-keys (monitoring refreshes, allocation bumps)."""
        return self._base.rekeys

    @property
    def class_rekeys(self) -> int:
        """Re-keys across the cached query-class orders."""
        return sum(order.rekeys for order in self._classes.values())

    @property
    def cached_query_classes(self) -> int:
        return len(self._classes)

    def _on_record_change(self, name: str,
                          record: Optional[MachineRecord]) -> None:
        """Subscription callback: re-rank ``name`` in every maintained
        order.

        Runs under the owning registry/shard lock (listeners are invoked
        inside it); the scheduler mutex additionally serialises it
        against listeners firing from *other* shards and against builds.
        The subscription map guarantees ``name`` is one of ours.
        """
        slot = self._slots.get(name)
        if slot is None:
            return  # not ours (broadcast-style forwarders); discard
        with self._mutex:
            self._base.on_change(name, slot, record)
            for order in self._classes.values():
                order.on_change(name, slot, record)

    def close(self) -> None:
        """Detach from the database (pool destroyed or split)."""
        self.database.unsubscribe(self._slots, self._on_record_change)
        with self._mutex:
            self._classes.clear()

    # -- query-class routing --------------------------------------------------

    def supports_query(self, query: Optional["Query"]) -> bool:
        """Can some maintained order answer this query's ranking?

        Always true for query-insensitive objectives; query-sensitive
        ones need a declared ``query_class`` decomposition.
        """
        if query is None or not self.objective.query_sensitive:
            return True
        return self.objective.query_class is not None

    def _order_for(self, query: Optional["Query"]) -> _RankOrder:
        if query is None or not self.objective.query_sensitive:
            return self._base
        class_fn = self.objective.query_class
        if class_fn is None:  # callers gate on supports_query
            raise LookupError(
                f"objective {self.objective.name!r} declares no query_class")
        key = class_fn(query)
        if key is None:
            # The query carries no class-relevant clauses: the objective
            # ranks it exactly like query=None.
            return self._base
        with self._mutex:
            order = self._classes.get(key)
            if order is not None:
                self._classes.move_to_end(key)
                return order
        # Build outside the mutex-first path: a build reads records, so
        # it must take the registry hold *before* the mutex to keep the
        # global lock order (shard locks, then scheduler mutex).
        with self.database.exclusive():
            with self._mutex:
                order = self._classes.get(key)
                if order is not None:
                    self._classes.move_to_end(key)
                    return order
                order = _RankOrder(
                    lambda record: self.objective.rank_key(record, query),
                    self.database, self._slots)
                self._classes[key] = order
                while len(self._classes) > self.max_query_classes:
                    self._classes.popitem(last=False)
                return order

    # -- order ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._base.entries)

    def iter_order(self, query: Optional["Query"] = None
                   ) -> Iterator[Tuple[int, str]]:
        """Lazily yield ``(cache_index, name)`` in scheduling order for
        ``query``'s class (base order when ``query`` is None or the
        objective ignores queries)."""
        return self._order_for(query).iter_order(self._mutex)

    def order(self, query: Optional["Query"] = None
              ) -> List[Tuple[int, str]]:
        """The full scheduling order (``scan_order``-compatible).

        Callers get a copy so they can never corrupt the published
        snapshot.
        """
        return list(self._order_for(query).snapshot(self._mutex))
