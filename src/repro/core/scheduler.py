"""Indexed in-pool scheduler: incrementally-maintained scheduling order.

The paper's pool scheduler "sorts machines within the object's cache
using specified criteria" on every query — the linear scan whose cost is
Figure 6's subject matter.  This module is the real implementation behind
the *indexed* ablation (``ResourcePoolConfig.linear_scan=False``): the
cache is kept in scheduling order permanently, so answering a query is a
walk of an already-sorted structure that stops at the first admissible
machine instead of an O(pool) re-sort.

Structure
---------
One sorted list of ``(rank_key, cache_index, machine_name)`` per bias
tier (replication keeps two tiers: "our" machines and the rest; see
:meth:`ResourcePool._bias_tier`).  Concatenated in tier order the lists
reproduce exactly the ``(tier, key, index)`` order the linear scan
computes, because the linear sort is lexicographic over those fields.

Maintenance is driven by the white-pages record-change listener
(:meth:`~repro.database.whitepages.WhitePagesDatabase.add_listener`):
when a cached machine's record is replaced, only that machine is re-keyed
— two bisects, O(log n) plus a memmove — so a monitoring refresh or an
allocation's load bump never triggers a cache walk.

Scope
-----
Rank keys are computed with ``query=None``, so the order is only valid
for objectives whose key ignores the query
(:attr:`~repro.core.scheduling.SchedulingObjective.query_sensitive` is
False — the default ``least_load`` among them).  The pool falls back to
the linear walk for query-sensitive objectives when a query is present;
selection semantics are therefore *identical* to linear mode in every
case.

Concurrency: the tier lists are only touched under the white-pages
registry lock (the listener already runs inside it; builds re-enter it),
while readers iterate *published* order lists that are replaced, never
mutated in place — so a monitoring thread refreshing records cannot tear
a selection in progress.  Allocation itself follows the pool's existing
single-writer discipline.
"""

from __future__ import annotations

import math
from bisect import insort, bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.scheduling import SchedulingObjective
from repro.database.records import MachineRecord
from repro.database.whitepages import WhitePagesDatabase

__all__ = ["IndexedPoolScheduler"]

#: ``(rank_key, cache_index, machine_name)`` — compares exactly like the
#: linear scan's ``(key, idx, name)`` sort fields within one bias tier.
_Entry = Tuple[Tuple[float, ...], int, str]


def _safe_key(key: Tuple[float, ...]) -> Tuple[float, ...]:
    """Map NaN components to +inf so the bisect order stays total.

    The linear path's ``list.sort`` over NaN keys is unspecified; pinning
    NaN to "rank last" keeps the index structurally sound without
    changing any specified ordering.
    """
    if any(isinstance(k, float) and math.isnan(k) for k in key):
        return tuple(math.inf if isinstance(k, float) and math.isnan(k)
                     else k for k in key)
    return key


class IndexedPoolScheduler:
    """Keeps one pool cache permanently in scheduling order.

    Parameters
    ----------
    database:
        The white pages; subscribed to for record changes until
        :meth:`close`.
    cache:
        The pool's machine names in cache order (fixed after
        initialisation; the cache index is the scheduling tie-breaker).
    objective:
        Ranking criterion; keys are computed with ``query=None``.
    tier_of:
        Maps a cache index to its replica-bias tier (0 = preferred).
    """

    def __init__(self, database: WhitePagesDatabase, cache: Sequence[str],
                 objective: SchedulingObjective,
                 tier_of: Callable[[int], int]):
        self.database = database
        self.objective = objective
        #: name -> (tier, cache index): fixed pool membership, so a
        #: machine removed from the registry and later re-registered can
        #: be restored to its slot in the order.
        self._slots: Dict[str, Tuple[int, int]] = {
            name: (tier_of(idx), idx) for idx, name in enumerate(cache)
        }
        #: name -> its current entry (absent while the machine is
        #: deleted from the registry).
        self._entries: Dict[str, _Entry] = {}
        #: tier number -> sorted entries; walked in ascending tier order.
        self._tiers: Dict[int, List[_Entry]] = {}
        #: Materialised ``(idx, name)`` order; invalidated by any re-key,
        #: so an unchanged pool answers ``scan_order`` with one copy.
        #: Published lists are replaced, never mutated — readers holding
        #: one can always finish iterating it safely.
        self._order_cache: Optional[List[Tuple[int, str]]] = None
        #: Bumped (under the registry lock) on every structural change;
        #: lazy iteration uses it to detect — and restart after — a
        #: concurrent mutation instead of walking a torn list.
        self._version = 0
        self.rekeys = 0
        # The registry lock (re-entrant) serialises the build against
        # concurrent record changes; subscribing inside the same hold
        # means no change can slip between build and subscription.
        with database._lock:
            for name, (tier, idx) in self._slots.items():
                record = database.get(name)
                key = _safe_key(objective.rank_key(record, None))
                entry: _Entry = (key, idx, name)
                self._tiers.setdefault(tier, []).append(entry)
                self._entries[name] = entry
            for entries in self._tiers.values():
                entries.sort()
            self._tier_order = sorted(self._tiers)
            database.add_listener(self._on_record_change)

    # -- maintenance ----------------------------------------------------------

    def _on_record_change(self, name: str,
                          record: Optional[MachineRecord]) -> None:
        """Database listener: re-rank ``name`` if we cache it.

        Runs under the registry lock (listeners are invoked inside it),
        so tier-list surgery never races a concurrent build.
        """
        slot = self._slots.get(name)
        if slot is None:
            return  # not one of ours
        tier, idx = slot
        entries = self._tiers[tier]
        entry = self._entries.get(name)
        if record is None:
            # Cached machine deleted from the registry — a broken state
            # the linear path would also fault on; drop it from the order
            # (and restore it if the machine is ever re-registered).
            if entry is not None:
                self._remove_entry(entries, entry)
                del self._entries[name]
                self._order_cache = None
                self._version += 1
            return
        new_key = _safe_key(self.objective.rank_key(record, None))
        if entry is not None:
            if new_key == entry[0]:
                return  # rank unchanged (e.g. memory-only refresh under least_load)
            self._remove_entry(entries, entry)
        new_entry: _Entry = (new_key, idx, name)
        insort(entries, new_entry)
        self._entries[name] = new_entry
        self._order_cache = None
        self._version += 1
        self.rekeys += 1

    @staticmethod
    def _remove_entry(entries: List[_Entry], entry: _Entry) -> None:
        i = bisect_left(entries, entry)
        if i < len(entries) and entries[i] == entry:
            del entries[i]

    def close(self) -> None:
        """Detach from the database (pool destroyed or split)."""
        self.database.remove_listener(self._on_record_change)

    # -- order ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def _order_snapshot(self) -> List[Tuple[int, str]]:
        """The current order as a list that is never mutated in place.

        Rebuilding takes the registry lock so the tier lists cannot be
        resorted mid-walk by a concurrent monitoring refresh; once
        published, a snapshot list is only ever *replaced* (by setting
        ``_order_cache`` to None and building a new one), so readers
        iterate it lock-free.
        """
        snapshot = self._order_cache
        if snapshot is None:
            with self.database._lock:
                snapshot = self._order_cache
                if snapshot is None:
                    snapshot = [
                        (idx, name)
                        for tier in self._tier_order
                        for _key, idx, name in self._tiers[tier]
                    ]
                    self._order_cache = snapshot
        return snapshot

    def iter_order(self) -> Iterator[Tuple[int, str]]:
        """Lazily yield ``(cache_index, name)`` in scheduling order.

        ``select_machine`` stops at the first admissible machine, so a
        healthy pool answers in O(1) candidates instead of O(pool) —
        without materialising the order (which the pool's own allocation
        re-keys would invalidate every cycle).
        """
        cache = self._order_cache
        if cache is not None:
            return iter(cache)
        return self._iter_live()

    def _iter_live(self) -> Iterator[Tuple[int, str]]:
        """Walk the live tier lists, restarting if a concurrent record
        change mutates them mid-walk.

        List reads are memory-safe under the GIL; the version check (and
        the IndexError guard for a shrink between bound check and read)
        turns a torn walk into a restart — equivalent to the caller
        re-requesting a fresh scan order.  Persistent churn falls back
        to one consistent materialised snapshot.
        """
        for _attempt in range(3):
            version = self._version
            stale = False
            for tier in self._tier_order:
                entries = self._tiers[tier]
                i = 0
                while True:
                    if self._version != version:
                        stale = True
                        break
                    try:
                        _key, idx, name = entries[i]
                    except IndexError:
                        break  # end of tier (or shrunk: version catches it)
                    i += 1
                    yield (idx, name)
                    if self._version != version:
                        stale = True
                        break
                if stale:
                    break
            if not stale:
                return
        yield from self._order_snapshot()

    def order(self) -> List[Tuple[int, str]]:
        """The full scheduling order (``scan_order``-compatible).

        Callers get a copy so they can never corrupt the published
        snapshot.
        """
        return list(self._order_snapshot())
