"""Query translation: native formats → the internal query model.

"Translating queries into a predefined internal format is an effective way
of supporting interoperability.  This allows different network-computing
systems to query the pipeline using their native resource specification
languages as long as an appropriate translator has been implemented in the
query manager" (Section 5.2.1).  The paper floats reusing Condor's
ClassAds as an example of a new key-value family.

Translators registered with a query manager are tried by declared format
name.  Provided:

- :class:`NativeTranslator` — the punch key-value text of Section 5.1.
- :class:`DictTranslator` — ``{"punch.rsrc.arch": "sun", ...}`` mappings
  (the form the application-management component emits programmatically).
- :class:`ClassAdTranslator` — a useful subset of Condor ClassAd
  requirement expressions (``Arch == "SUN4u" && Memory >= 64``).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.language import CompositeQuery, QueryLanguage, default_language
from repro.errors import QuerySyntaxError

__all__ = [
    "Translator",
    "NativeTranslator",
    "DictTranslator",
    "ClassAdTranslator",
    "TranslatorRegistry",
]


class Translator:
    """Interface: turn one native payload into a :class:`CompositeQuery`."""

    format_name: str = ""

    def translate(self, payload: Any) -> CompositeQuery:
        raise NotImplementedError


class NativeTranslator(Translator):
    """The pipeline's native key-value text (Section 5.1)."""

    format_name = "punch"

    def __init__(self, language: Optional[QueryLanguage] = None):
        self.language = language or default_language()

    def translate(self, payload: Any) -> CompositeQuery:
        if not isinstance(payload, str):
            raise QuerySyntaxError(
                f"punch translator expects text, got {type(payload).__name__}"
            )
        return self.language.parse(payload)


class DictTranslator(Translator):
    """Programmatic ``{dotted_key: value_text}`` mappings."""

    format_name = "dict"

    def __init__(self, language: Optional[QueryLanguage] = None):
        self.language = language or default_language()

    def translate(self, payload: Any) -> CompositeQuery:
        if not isinstance(payload, Mapping):
            raise QuerySyntaxError(
                f"dict translator expects a mapping, got {type(payload).__name__}"
            )
        lines = [f"{key} = {value}" for key, value in payload.items()]
        return self.language.parse("\n".join(lines))


# ClassAd attribute -> punch rsrc key, with value normalisation.
_CLASSAD_ATTR_MAP: Dict[str, Tuple[str, Optional[Dict[str, str]]]] = {
    "arch": ("punch.rsrc.arch", {"sun4u": "sun", "sun4m": "sun",
                                 "intel": "x86", "x86_64": "x86"}),
    "opsys": ("punch.rsrc.ostype", {"solaris": "solaris", "linux": "linux",
                                    "hpux": "hpux"}),
    "memory": ("punch.rsrc.memory", None),
    "disk": ("punch.rsrc.swap", None),
    "domain": ("punch.rsrc.domain", None),
}

_CLASSAD_CLAUSE_RE = re.compile(
    r"""\s*(?P<attr>[A-Za-z_][A-Za-z0-9_]*)\s*
        (?P<op>==|!=|>=|<=|>|<)\s*
        (?P<value>"[^"]*"|[0-9.]+)\s*""",
    re.VERBOSE,
)


class ClassAdTranslator(Translator):
    """A subset of Condor ClassAd ``Requirements`` expressions.

    Supports conjunctions (``&&``) of comparisons and disjunctions
    (``||``) *within one attribute* (which map onto the native language's
    alternation).  Attribute names are case-insensitive and mapped through
    :data:`_CLASSAD_ATTR_MAP`.
    """

    format_name = "classad"

    def __init__(self, language: Optional[QueryLanguage] = None):
        self.language = language or default_language()

    def translate(self, payload: Any) -> CompositeQuery:
        if not isinstance(payload, str):
            raise QuerySyntaxError(
                f"classad translator expects text, got {type(payload).__name__}"
            )
        # attr -> list of (op, value_text)
        constraints: Dict[str, List[Tuple[str, str]]] = {}
        for conjunct in payload.split("&&"):
            conjunct = conjunct.strip()
            if not conjunct:
                raise QuerySyntaxError("empty conjunct in ClassAd expression")
            alternatives = [a.strip() for a in conjunct.split("||")]
            attr_seen: Optional[str] = None
            for alt in alternatives:
                m = _CLASSAD_CLAUSE_RE.fullmatch(alt)
                if not m:
                    raise QuerySyntaxError(
                        f"cannot parse ClassAd clause {alt!r}"
                    )
                attr = m.group("attr").lower()
                if attr_seen is None:
                    attr_seen = attr
                elif attr != attr_seen:
                    raise QuerySyntaxError(
                        "ClassAd '||' across different attributes is not "
                        f"supported ({attr_seen!r} vs {attr!r})"
                    )
                value = m.group("value").strip('"')
                constraints.setdefault(attr, []).append((m.group("op"), value))
        lines: List[str] = []
        for attr, pairs in constraints.items():
            mapped = _CLASSAD_ATTR_MAP.get(attr)
            if mapped is None:
                raise QuerySyntaxError(
                    f"ClassAd attribute {attr!r} has no punch mapping"
                )
            key, value_map = mapped
            rendered: List[str] = []
            for op, value in pairs:
                if value_map is not None:
                    value = value_map.get(value.lower(), value.lower())
                prefix = "" if op == "==" else op
                rendered.append(f"{prefix}{value}")
            lines.append(f"{key} = {'|'.join(rendered)}")
        return self.language.parse("\n".join(lines))


class TranslatorRegistry:
    """The query manager's table of native-format translators."""

    def __init__(self, language: Optional[QueryLanguage] = None):
        lang = language or default_language()
        self._translators: Dict[str, Translator] = {}
        for t in (NativeTranslator(lang), DictTranslator(lang),
                  ClassAdTranslator(lang)):
            self.register(t)

    def register(self, translator: Translator) -> None:
        if not translator.format_name:
            raise QuerySyntaxError("translator must declare format_name")
        self._translators[translator.format_name] = translator

    def translate(self, payload: Any, format_name: str = "punch"
                  ) -> CompositeQuery:
        t = self._translators.get(format_name)
        if t is None:
            raise QuerySyntaxError(
                f"no translator registered for format {format_name!r}"
            )
        return t.translate(payload)

    def formats(self) -> List[str]:
        return sorted(self._translators)
