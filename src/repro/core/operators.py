"""Comparative operators of the ActYP query language.

The paper's pool-name signature encodes "a string that specifies the
corresponding comparative operators (e.g., equal to, greater than, etc.)";
its example uses ``==`` and ``>=``.  Values may be "numeric, string,
range, etc." — we implement equality/inequality for strings, the full
ordered set for numbers, an inclusive range, and set membership (used by
administrators for keys like ``cms=sge,pbs,condor``).
"""

from __future__ import annotations

import enum
from typing import Any, Tuple, Union

# The value-equivalence rules are shared with the attribute indexes: the
# hash-index token function must induce exactly this equality, so both
# live in repro.database.indexes (a leaf module) and are re-exported here.
from repro.database.indexes import (  # noqa: F401  (re-exports)
    any_element_equal as _any_element_equal,
    coerce_number,
    loose_equal as _loose_equal,
)
from repro.errors import OperatorError

__all__ = ["Op", "coerce_number", "compare", "RangeValue"]

Number = Union[int, float]


class Op(enum.Enum):
    """A comparative operator, with its query-text spelling as value."""

    EQ = "=="
    NE = "!="
    GE = ">="
    LE = "<="
    GT = ">"
    LT = "<"
    IN = "in"        # value is a set of alternatives
    RANGE = "range"  # value is an inclusive (lo, hi) pair

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Op":
        for op in cls:
            if op.value == text:
                return op
        raise OperatorError(f"unknown operator {text!r}")

    @property
    def is_ordered(self) -> bool:
        """True for operators that require numeric comparison."""
        return self in (Op.GE, Op.LE, Op.GT, Op.LT, Op.RANGE)


class RangeValue(Tuple[float, float]):
    """Inclusive numeric range ``lo..hi`` (a tuple subclass for hashability)."""

    def __new__(cls, lo: float, hi: float) -> "RangeValue":
        if lo > hi:
            raise OperatorError(f"empty range {lo}..{hi}")
        return super().__new__(cls, (float(lo), float(hi)))

    @property
    def lo(self) -> float:
        return self[0]

    @property
    def hi(self) -> float:
        return self[1]

    def __str__(self) -> str:
        return f"{format_number(self.lo)}..{format_number(self.hi)}"


def format_number(x: float) -> str:
    """Render a number the way identifiers expect (no trailing ``.0``)."""
    if float(x).is_integer():
        return str(int(x))
    return repr(float(x))


def compare(op: Op, machine_value: Any, query_value: Any) -> bool:
    """Does ``machine_value`` satisfy ``op query_value``?

    String comparison for EQ/NE is case-insensitive, matching the paper's
    loosely-cased examples (``sun``, ``SPARC-ULTRA``).  Machine-side
    values may be *multi-valued* — Section 4.1's example parameter is
    ``cms=sge,pbs,condor`` — in which case EQ holds when any element
    matches (and NE when none does).  Ordered operators coerce both sides
    to numbers; an uncoercible side fails the clause (fail-closed: a
    machine with ``memory = "unknown"`` does not satisfy ``memory >= 10``).
    """
    if machine_value is None:
        return False
    if op is Op.EQ or op is Op.NE:
        eq = _any_element_equal(machine_value, query_value)
        return eq if op is Op.EQ else not eq
    if op is Op.IN:
        if not isinstance(query_value, (frozenset, set, tuple, list)):
            raise OperatorError("IN operator requires a collection value")
        return any(_loose_equal(machine_value, alt) for alt in query_value)
    if op is Op.RANGE:
        if not isinstance(query_value, RangeValue):
            raise OperatorError("RANGE operator requires a RangeValue")
        mv = coerce_number(machine_value)
        return mv is not None and query_value.lo <= mv <= query_value.hi
    # Ordered comparison.
    mv = coerce_number(machine_value)
    qv = coerce_number(query_value)
    if mv is None or qv is None:
        return False
    if op is Op.GE:
        return mv >= qv
    if op is Op.LE:
        return mv <= qv
    if op is Op.GT:
        return mv > qv
    if op is Op.LT:
        return mv < qv
    raise OperatorError(f"unhandled operator {op}")  # pragma: no cover
