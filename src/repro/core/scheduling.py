"""Scheduling objectives for resource pools (Section 5.2.3).

"Each pool object has one or more scheduling processes associated with it.
The function of these processes is to sort machines within the object's
cache using specified criteria (e.g., average load or available memory) ...
Pool objects can be configured to utilize different scheduling objectives
and policies" (the paper cites Krueger & Livny's catalogue of objectives).

An objective is a *ranking*: machines with smaller key are preferred.  The
query is available to the key function so objectives can use predicted
application behaviour (``punch.appl.*``) — e.g. best-fit memory placement
for a run with a known footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.query import Query
from repro.database.records import MachineRecord
from repro.errors import ConfigError

__all__ = ["SchedulingObjective", "register_objective", "get_objective",
           "objective_names"]

KeyFn = Callable[[MachineRecord, Optional[Query]], Tuple[float, ...]]
#: Maps a query to its *query class*: a hashable key such that two
#: queries with equal keys rank every record identically under the
#: objective.  ``None`` means "ranks exactly like ``query=None``".
ClassFn = Callable[[Query], Optional[Hashable]]


@dataclass(frozen=True)
class SchedulingObjective:
    """A named machine-ranking criterion (smaller key = preferred).

    ``query_sensitive`` declares whether the key actually reads the query
    (e.g. a predicted memory footprint).  Query-insensitive objectives
    can be served from an incrementally-maintained rank index
    (:class:`repro.core.scheduler.IndexedPoolScheduler`) because their
    keys depend on the record alone.

    A query-sensitive objective may additionally declare ``query_class``:
    a factoring of its key into a (machine-static, query-class)
    decomposition.  ``query_class(query)`` must return a hashable key
    with the invariant that two queries mapping to the same key produce
    the same ``rank_key`` for *every* record (``None`` meaning the query
    ranks exactly like ``query=None``).  The indexed scheduler then
    maintains one sorted rank list per observed class instead of taking
    the per-query linear walk.  A query-sensitive objective *without*
    ``query_class`` falls back to the linear walk whenever a query is
    present, as before.
    """

    name: str
    key: KeyFn
    description: str = ""
    query_sensitive: bool = False
    query_class: Optional[ClassFn] = None

    def rank_key(self, record: MachineRecord, query: Optional[Query] = None
                 ) -> Tuple[float, ...]:
        return self.key(record, query)


_REGISTRY: Dict[str, SchedulingObjective] = {}


def register_objective(objective: SchedulingObjective) -> SchedulingObjective:
    if objective.name in _REGISTRY:
        raise ConfigError(f"objective {objective.name!r} already registered")
    _REGISTRY[objective.name] = objective
    return objective


def get_objective(name: str) -> SchedulingObjective:
    obj = _REGISTRY.get(name)
    if obj is None:
        raise ConfigError(
            f"unknown scheduling objective {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        )
    return obj


def objective_names() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in objectives
# ---------------------------------------------------------------------------

def _least_load(record: MachineRecord, query: Optional[Query]
                ) -> Tuple[float, ...]:
    # Normalise by CPU count so an 8-CPU machine at load 2 beats a
    # uniprocessor at load 1.
    return (record.current_load / record.num_cpus,)


def _most_memory(record: MachineRecord, query: Optional[Query]
                 ) -> Tuple[float, ...]:
    return (-record.available_memory_mb,)


def _fastest(record: MachineRecord, query: Optional[Query]
             ) -> Tuple[float, ...]:
    return (-record.effective_speed, record.current_load / record.num_cpus)


def _least_jobs(record: MachineRecord, query: Optional[Query]
                ) -> Tuple[float, ...]:
    return (float(record.active_jobs),)


def _best_fit_memory(record: MachineRecord, query: Optional[Query]
                     ) -> Tuple[float, ...]:
    """Smallest adequate memory surplus; falls back to most-memory."""
    need = None
    if query is not None:
        v = query.get("punch.appl.expectedmemoryuse")
        need = None if v is None else float(v)
    if need is None:
        return (-record.available_memory_mb,)
    surplus = record.available_memory_mb - need
    # Inadequate machines rank last (huge key), adequate ones by surplus.
    return (surplus if surplus >= 0 else float("inf"),)


def _best_fit_memory_class(query: Query) -> Optional[Hashable]:
    """Class key: the predicted footprint (the only query input the key
    reads).  Kept as the raw clause value — two queries with the same
    value trivially rank identically; distinct-but-coercion-equal values
    ("200" vs 200.0) land in separate classes, which costs one extra
    cached order, never correctness."""
    v = query.get("punch.appl.expectedmemoryuse")
    if v is None:
        return None
    return ("expectedmemoryuse", v if isinstance(v, Hashable) else str(v))


def _min_response_time_class(query: Query) -> Optional[Hashable]:
    """Class key: exactly the query input the key function will read.

    A qualified estimate takes precedence in ``_min_response_time`` —
    ``expectedcpuuse`` is then ignored — so it must not fragment the
    class (identical-ranking queries landing in distinct classes would
    thrash the LRU for nothing)."""
    qualified = query.get("punch.appl.cpuestimate")
    if qualified is not None:
        return ("cpuestimate",
                qualified if isinstance(qualified, Hashable)
                else str(qualified))
    plain = query.get("punch.appl.expectedcpuuse")
    if plain is None:
        return None
    return ("expectedcpuuse",
            plain if isinstance(plain, Hashable) else str(plain))


def _min_response_time(record: MachineRecord, query: Optional[Query]
                       ) -> Tuple[float, ...]:
    """Expected completion ~ duration_on_machine * (1 + load/cpus).

    Prefers a reference-qualified estimate (``punch.appl.cpuestimate``,
    the paper's footnote-5 extension) when present; otherwise falls back
    to ``expectedcpuuse`` against the default reference machine.
    """
    duration: Optional[float] = None
    if query is not None:
        qualified = query.get("punch.appl.cpuestimate")
        if qualified is not None:
            from repro.core.estimates import normalise_for, parse_cpu_estimate
            duration = normalise_for(parse_cpu_estimate(str(qualified)),
                                     record)
    if duration is None:
        cpu_need = 1000.0
        if query is not None and query.expected_cpu_use is not None:
            cpu_need = query.expected_cpu_use
        # expectedcpuuse is against the speed-300 default reference.
        duration = cpu_need * 300.0 / record.effective_speed
    slowdown = 1.0 + record.current_load / record.num_cpus
    return (duration * slowdown,)


register_objective(SchedulingObjective(
    "least_load", _least_load,
    "prefer the lowest per-CPU load (the paper's default example)"))
register_objective(SchedulingObjective(
    "most_memory", _most_memory,
    "prefer the largest available memory"))
register_objective(SchedulingObjective(
    "fastest", _fastest,
    "prefer the highest effective speed, tie-break on load"))
register_objective(SchedulingObjective(
    "least_jobs", _least_jobs,
    "prefer the fewest active jobs"))
register_objective(SchedulingObjective(
    "best_fit_memory", _best_fit_memory,
    "smallest adequate memory surplus for the predicted footprint",
    query_sensitive=True, query_class=_best_fit_memory_class))
register_objective(SchedulingObjective(
    "min_response_time", _min_response_time,
    "minimise predicted completion time from the appl estimate",
    query_sensitive=True, query_class=_min_response_time_class))
