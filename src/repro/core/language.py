"""The hierarchical key-value query language (Section 5.1).

Grammar, per line::

    <family>.<type>.<name> = [<op>]<value>["|"<alt-value>...]

The *family* (``punch``) defines the semantics for its *types* (``rsrc``,
``appl``, ``user``); "valid words for the final part of the key and the
interpretation of the value part of the key-value pairs (e.g., numeric,
string, range, etc.) are specified by administrators".  That registration
lives in :class:`QueryLanguage`; :func:`punch_language` builds the family
the paper uses, pre-loaded with the keys the production PUNCH system
exercises (arch, memory, ostype, osversion, owner, swap, cms, domain,
license, ...).

Alternation ``sun|hp`` in a value makes the query *composite*; the query
manager decomposes it (see :mod:`repro.core.decompose`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.operators import Op, RangeValue
from repro.core.query import Clause, Query
from repro.errors import (
    OperatorError,
    QuerySyntaxError,
    UnknownFamilyError,
    UnknownKeyError,
)

__all__ = [
    "ValueKind",
    "KeySpec",
    "QueryLanguage",
    "punch_language",
    "parse_query",
    "compile_text",
    "CompositeQuery",
]


class ValueKind(enum.Enum):
    """Administrator-declared interpretation of a key's value part."""

    STRING = "string"
    NUMBER = "number"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class KeySpec:
    """Declaration of one valid key within a family/type."""

    family: str
    type: str
    name: str
    kind: ValueKind = ValueKind.STRING
    #: Operators admins allow on this key (None = all).
    allowed_ops: Optional[FrozenSet[Op]] = None
    description: str = ""

    @property
    def dotted(self) -> str:
        return f"{self.family}.{self.type}.{self.name}"


#: Operator spellings, longest first so ``>=`` wins over ``>``.
_OP_PREFIXES: Tuple[Tuple[str, Op], ...] = (
    ("==", Op.EQ), ("!=", Op.NE), (">=", Op.GE), ("<=", Op.LE),
    (">", Op.GT), ("<", Op.LT),
)


@dataclass(frozen=True)
class CompositeQuery:
    """A query whose clauses may carry per-key alternatives.

    ``groups[i]`` is the tuple of alternative clauses for one key; a basic
    query is the special case where every group has exactly one member.
    Expansion into basic queries is the query manager's job
    (:mod:`repro.core.decompose`).
    """

    groups: Tuple[Tuple[Clause, ...], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise QuerySyntaxError("empty query")
        for group in self.groups:
            if not group:
                raise QuerySyntaxError("empty alternative group")
            keys = {c.key for c in group}
            if len(keys) != 1:
                raise QuerySyntaxError(
                    f"alternative group mixes keys: {sorted(keys)}"
                )

    @property
    def is_composite(self) -> bool:
        return any(len(g) > 1 for g in self.groups)

    @property
    def component_count(self) -> int:
        n = 1
        for g in self.groups:
            n *= len(g)
        return n

    def basic(self) -> Query:
        """The single basic query, when not composite."""
        if self.is_composite:
            raise QuerySyntaxError(
                "composite query has no single basic form; decompose it"
            )
        return Query(clauses=tuple(g[0] for g in self.groups))


class QueryLanguage:
    """Registry of families, types, and key specs; parser/validator."""

    def __init__(self):
        self._families: Dict[str, Dict[str, Dict[str, KeySpec]]] = {}

    # -- registration ------------------------------------------------------------

    def register_family(self, family: str, types: Sequence[str]) -> None:
        if family in self._families:
            raise QuerySyntaxError(f"family {family!r} already registered")
        self._families[family] = {t: {} for t in types}

    def register_key(self, spec: KeySpec) -> None:
        types = self._families.get(spec.family)
        if types is None:
            raise UnknownFamilyError(spec.family)
        if spec.type not in types:
            raise UnknownKeyError(
                f"type {spec.type!r} not valid in family {spec.family!r}"
            )
        if spec.name in types[spec.type]:
            raise QuerySyntaxError(f"key {spec.dotted!r} already registered")
        types[spec.type][spec.name] = spec

    def families(self) -> List[str]:
        return sorted(self._families)

    def keys_for(self, family: str, type_: str) -> List[KeySpec]:
        types = self._families.get(family)
        if types is None:
            raise UnknownFamilyError(family)
        if type_ not in types:
            raise UnknownKeyError(f"type {type_!r} not in family {family!r}")
        return [types[type_][k] for k in sorted(types[type_])]

    def spec(self, family: str, type_: str, name: str) -> KeySpec:
        types = self._families.get(family)
        if types is None:
            raise UnknownFamilyError(family)
        keys = types.get(type_)
        if keys is None:
            raise UnknownKeyError(f"type {type_!r} not in family {family!r}")
        spec = keys.get(name)
        if spec is None:
            raise UnknownKeyError(f"key {family}.{type_}.{name} not registered")
        return spec

    # -- parsing -----------------------------------------------------------------

    def parse(self, text: str) -> CompositeQuery:
        """Parse multi-line query text into a :class:`CompositeQuery`.

        Blank lines and ``#`` comments are ignored.  Duplicate keys are a
        syntax error (the model is a conjunction; a duplicated key is
        almost always a typo for alternation).
        """
        groups: List[Tuple[Clause, ...]] = []
        seen: set[str] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise QuerySyntaxError(
                    f"line {lineno}: expected 'key = value', got {line!r}"
                )
            key_txt, value_txt = line.split("=", 1)
            key_txt = key_txt.strip()
            value_txt = value_txt.strip()
            # Tolerate 'key == value' spelling: the first '=' consumed by the
            # split leaves a dangling '=' that is not an operator prefix.
            if value_txt.startswith("=") and not value_txt.startswith("=="):
                value_txt = value_txt[1:].strip()
            parts = key_txt.split(".")
            if len(parts) != 3:
                raise QuerySyntaxError(
                    f"line {lineno}: key must be family.type.name, got {key_txt!r}"
                )
            family, type_, name = (p.strip() for p in parts)
            spec = self.spec(family, type_, name)
            if spec.dotted in seen:
                raise QuerySyntaxError(
                    f"line {lineno}: duplicate key {spec.dotted!r}"
                )
            seen.add(spec.dotted)
            groups.append(self._parse_value(spec, value_txt, lineno))
        if not groups:
            raise QuerySyntaxError("query text contained no clauses")
        return CompositeQuery(groups=tuple(groups))

    def _parse_value(self, spec: KeySpec, value_txt: str, lineno: int
                     ) -> Tuple[Clause, ...]:
        if not value_txt:
            raise QuerySyntaxError(f"line {lineno}: empty value for {spec.dotted}")
        alternatives = [v.strip() for v in value_txt.split("|")]
        if any(not v for v in alternatives):
            raise QuerySyntaxError(f"line {lineno}: empty alternative")
        clauses = tuple(
            self._parse_single(spec, alt, lineno) for alt in alternatives
        )
        return clauses

    def _parse_single(self, spec: KeySpec, text: str, lineno: int) -> Clause:
        op = Op.EQ
        for prefix, candidate in _OP_PREFIXES:
            if text.startswith(prefix):
                op = candidate
                text = text[len(prefix):].strip()
                break
        value: Any
        if ".." in text and spec.kind is ValueKind.NUMBER:
            lo_txt, hi_txt = text.split("..", 1)
            try:
                value = RangeValue(float(lo_txt), float(hi_txt))
            except ValueError as exc:
                raise QuerySyntaxError(
                    f"line {lineno}: bad range {text!r} for {spec.dotted}"
                ) from exc
            if op is not Op.EQ:
                raise QuerySyntaxError(
                    f"line {lineno}: ranges take no comparative operator"
                )
            op = Op.RANGE
        elif spec.kind is ValueKind.NUMBER:
            try:
                value = float(text)
            except ValueError as exc:
                raise QuerySyntaxError(
                    f"line {lineno}: {spec.dotted} expects a number, got {text!r}"
                ) from exc
        else:
            if op.is_ordered:
                raise OperatorError(
                    f"line {lineno}: ordered operator {op} on string key "
                    f"{spec.dotted}"
                )
            value = text
        if spec.allowed_ops is not None and op not in spec.allowed_ops:
            raise OperatorError(
                f"line {lineno}: operator {op} not allowed on {spec.dotted}"
            )
        return Clause(family=spec.family, type=spec.type, name=spec.name,
                      op=op, value=value)


def punch_language() -> QueryLanguage:
    """The ``punch`` family as deployed on production PUNCH.

    The ``rsrc`` keys cover the admin parameters Section 4.1 lists (arch,
    memory, ostype, osversion, owner, swap, cms) plus the query examples'
    ``domain`` and ``license``, and the monitoring-backed dynamic keys the
    scheduler can constrain on.
    """
    lang = QueryLanguage()
    lang.register_family("punch", ["rsrc", "appl", "user"])
    S, N = ValueKind.STRING, ValueKind.NUMBER
    rsrc_keys = [
        ("arch", S, "machine architecture (e.g. sun, hp, sparc-ultra)"),
        ("memory", N, "installed memory, MB (default unit)"),
        ("swap", N, "installed swap, MB"),
        ("ostype", S, "operating system type"),
        ("osversion", S, "operating system version"),
        ("owner", S, "machine owner"),
        ("cms", S, "cluster management system (sge, pbs, condor)"),
        ("domain", S, "administrative domain"),
        ("license", S, "software license available on the machine"),
        ("tool", S, "tool group the machine must support"),
        ("speed", N, "effective speed, SPECfp-like units"),
        ("cpus", N, "number of CPUs"),
        ("load", N, "current load (monitoring-backed)"),
        ("freememory", N, "available memory, MB (monitoring-backed)"),
        ("pool", S, "explicit pool tag (experiment striping)"),
    ]
    for name, kind, desc in rsrc_keys:
        lang.register_key(KeySpec("punch", "rsrc", name, kind, description=desc))
    appl_keys = [
        ("expectedcpuuse", N, "predicted CPU seconds on the reference machine"),
        ("cpuestimate", S, "reference-qualified CPU estimate(s), e.g. "
                           "1000s@sun.iu:sparc:ultra-510:333MHz (footnote 5)"),
        ("expectedmemoryuse", N, "predicted memory footprint, MB"),
        ("priority", N, "user-specified priority"),
        ("version", S, "requested application version"),
    ]
    for name, kind, desc in appl_keys:
        lang.register_key(KeySpec("punch", "appl", name, kind, description=desc))
    user_keys = [
        ("login", S, "user login"),
        ("accessgroup", S, "user access group"),
        ("accesskey", S, "session access key / password token"),
    ]
    for name, kind, desc in user_keys:
        lang.register_key(KeySpec("punch", "user", name, kind, description=desc))
    return lang


_DEFAULT_LANGUAGE: Optional[QueryLanguage] = None


def default_language() -> QueryLanguage:
    global _DEFAULT_LANGUAGE
    if _DEFAULT_LANGUAGE is None:
        _DEFAULT_LANGUAGE = punch_language()
    return _DEFAULT_LANGUAGE


def parse_query(text: str, language: Optional[QueryLanguage] = None
                ) -> CompositeQuery:
    """Parse query text with the given (default: punch) language."""
    return (language or default_language()).parse(text)


def compile_text(text: str, language: Optional[QueryLanguage] = None):
    """Parse a *basic* query and compile it straight to a
    :class:`~repro.core.plan.QueryPlan`.

    Composite queries must be decomposed first (each basic component
    compiles to its own plan); this helper raises for them, matching
    :meth:`CompositeQuery.basic`.
    """
    from repro.core.plan import compile_plan
    return compile_plan(parse_query(text, language).basic())
