"""Advance reservations (extension; paper Section 8 contrast).

"[Globus] also supports advance reservations and co-allocation of compute
resources, neither of which are currently supported by ActYP."
Co-allocation lives in :meth:`ResourcePool.allocate_many`; this module
adds the other half: a per-machine reservation calendar and a pool-level
booking API.

Model
-----
A :class:`Reservation` is a half-open interval ``[start_s, end_s)`` on
one machine, identified by a token.  The :class:`ReservationBook` rejects
overlapping reservations per machine and answers "is this machine
committed at time t?".  :func:`reserve_in_pool` books the best machine of
a pool that is *free over the whole window*; at start time the holder
claims the reservation, which turns into an ordinary allocation (so
release flows through the normal path).
"""

from __future__ import annotations

import bisect
import secrets
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.query import Allocation, Query
from repro.core.resource_pool import ResourcePool
from repro.errors import ReproError

__all__ = ["Reservation", "ReservationBook", "ReservationError",
           "reserve_in_pool", "claim_reservation"]


class ReservationError(ReproError):
    """Conflict, unknown token, or out-of-window claim."""


@dataclass(frozen=True)
class Reservation:
    """A confirmed booking of one machine for a time window."""

    token: str
    machine_name: str
    start_s: float
    end_s: float
    query_id: int = 0
    login: str = ""

    def overlaps(self, start_s: float, end_s: float) -> bool:
        return self.start_s < end_s and start_s < self.end_s

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


class ReservationBook:
    """Per-machine calendars with conflict detection."""

    def __init__(self):
        self._lock = threading.RLock()
        #: machine -> list of (start, reservation), sorted by start.
        self._calendar: Dict[str, List[Tuple[float, Reservation]]] = {}
        self._by_token: Dict[str, Reservation] = {}

    # -- booking -----------------------------------------------------------------

    def is_free(self, machine_name: str, start_s: float, end_s: float
                ) -> bool:
        with self._lock:
            for _s, r in self._calendar.get(machine_name, []):
                if r.overlaps(start_s, end_s):
                    return False
            return True

    def reserve(self, machine_name: str, start_s: float, end_s: float,
                *, query_id: int = 0, login: str = "") -> Reservation:
        if not start_s < end_s:
            raise ReservationError(
                f"empty reservation window [{start_s}, {end_s})"
            )
        with self._lock:
            if not self.is_free(machine_name, start_s, end_s):
                raise ReservationError(
                    f"{machine_name} already reserved in "
                    f"[{start_s}, {end_s})"
                )
            reservation = Reservation(
                token=secrets.token_hex(16),
                machine_name=machine_name,
                start_s=start_s, end_s=end_s,
                query_id=query_id, login=login,
            )
            entries = self._calendar.setdefault(machine_name, [])
            bisect.insort(entries, (start_s, reservation))
            self._by_token[reservation.token] = reservation
            return reservation

    def cancel(self, token: str) -> Reservation:
        with self._lock:
            reservation = self._by_token.pop(token, None)
            if reservation is None:
                raise ReservationError(f"unknown reservation {token[:8]}...")
            entries = self._calendar.get(reservation.machine_name, [])
            entries.remove((reservation.start_s, reservation))
            return reservation

    # -- queries -----------------------------------------------------------------

    def get(self, token: str) -> Reservation:
        with self._lock:
            reservation = self._by_token.get(token)
            if reservation is None:
                raise ReservationError(f"unknown reservation {token[:8]}...")
            return reservation

    def committed_at(self, machine_name: str, t: float) -> Optional[Reservation]:
        """The reservation covering instant ``t`` on the machine, if any."""
        with self._lock:
            for _s, r in self._calendar.get(machine_name, []):
                if r.covers(t):
                    return r
            return None

    def reservations_on(self, machine_name: str) -> List[Reservation]:
        with self._lock:
            return [r for _s, r in self._calendar.get(machine_name, [])]

    def expire_before(self, t: float) -> int:
        """Drop reservations that ended before ``t``; returns the count."""
        with self._lock:
            dropped = 0
            for machine, entries in list(self._calendar.items()):
                keep = [(s, r) for s, r in entries if r.end_s > t]
                dropped += len(entries) - len(keep)
                for _s, r in entries:
                    if r.end_s <= t:
                        self._by_token.pop(r.token, None)
                self._calendar[machine] = keep
            return dropped


def reserve_in_pool(pool: ResourcePool, book: ReservationBook, query: Query,
                    start_s: float, duration_s: float) -> Reservation:
    """Book the best machine of ``pool`` that is free over the window.

    Machines are considered in the pool's scheduling order, so the
    reservation lands on the machine the scheduler would pick today; only
    calendar conflicts are checked (load at start time is unknowable).
    """
    if duration_s <= 0:
        raise ReservationError("duration must be positive")
    end_s = start_s + duration_s
    for _idx, name in pool.scan_order(query):
        record = pool.database.get(name)
        if not query.matches_machine(record):
            continue
        if book.is_free(name, start_s, end_s):
            return book.reserve(
                name, start_s, end_s,
                query_id=query.query_id, login=query.login,
            )
    raise ReservationError(
        f"no machine in pool {pool.name} free in [{start_s}, {end_s})"
    )


def claim_reservation(pool: ResourcePool, book: ReservationBook,
                      token: str, query: Query, now: float) -> Allocation:
    """At start time, convert a reservation into a live allocation.

    The claim must fall inside the reserved window; the reserved machine
    is allocated directly (bypassing the scan — the point of reserving).
    The reservation is consumed.
    """
    reservation = book.get(token)
    if not reservation.covers(now):
        raise ReservationError(
            f"claim at t={now} outside window "
            f"[{reservation.start_s}, {reservation.end_s})"
        )
    record = pool.database.get(reservation.machine_name)
    if not record.is_up:
        # The machine died since booking; the reservation is void.
        book.cancel(token)
        raise ReservationError(
            f"reserved machine {reservation.machine_name} is not up"
        )
    allocation = pool.allocate(
        query, now=now,
        exclude=[m for m in pool.cache
                 if m != reservation.machine_name],
    )
    book.cancel(token)
    return allocation
