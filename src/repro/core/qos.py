"""QoS mechanisms from the qualitative analysis (Section 6).

"Higher levels of QoS could be provided by simultaneously forwarding a
given query to multiple pool managers and pool objects, and utilizing the
best response.  In contrast, the response time for composite queries could
be minimized by returning the first available match."

Two mechanisms are provided:

- :class:`RedundantFanout` — duplicate a basic query across ``k`` targets
  and keep the first (or best) response; the deployments use it to decide
  how many pool managers receive each component.
- Reintegration policy selection (``first_match`` vs ``all``) lives in
  :class:`~repro.core.decompose.ReintegrationBuffer`; :func:`qos_profile`
  maps a named service level to concrete settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigError

__all__ = ["RedundantFanout", "QosProfile", "qos_profile"]

T = TypeVar("T")


@dataclass(frozen=True)
class RedundantFanout:
    """Pick ``k`` distinct targets for redundant dispatch."""

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"fanout k must be >= 1, got {self.k}")

    def choose(self, targets: Sequence[T], rng: np.random.Generator
               ) -> List[T]:
        """``min(k, len(targets))`` distinct targets, uniformly sampled."""
        if not targets:
            raise ConfigError("no targets to fan out to")
        n = min(self.k, len(targets))
        idx = rng.choice(len(targets), size=n, replace=False)
        return [targets[int(i)] for i in idx]


@dataclass(frozen=True)
class QosProfile:
    """A named service level's pipeline settings."""

    name: str
    fanout: int
    reintegration_policy: str
    description: str = ""


_PROFILES: Dict[str, QosProfile] = {
    "standard": QosProfile(
        "standard", fanout=1, reintegration_policy="first_match",
        description="single dispatch, first composite match wins"),
    "low_latency": QosProfile(
        "low_latency", fanout=2, reintegration_policy="first_match",
        description="duplicate dispatch to two pool managers, first "
                    "response wins (Section 6's higher-QoS mode)"),
    "best_quality": QosProfile(
        "best_quality", fanout=1, reintegration_policy="all",
        description="wait for every composite component and take the "
                    "highest-preference success"),
}


def qos_profile(name: str) -> QosProfile:
    profile = _PROFILES.get(name)
    if profile is None:
        raise ConfigError(
            f"unknown QoS profile {name!r}; known: {sorted(_PROFILES)}"
        )
    return profile
