"""Pool managers: the pipeline's second stage (Section 5.2.2).

A pool manager

1. **maps** each basic query to a pool name (signature + identifier),
2. **looks up** live instances of that pool in its local directory service
   and randomly selects one,
3. **creates** a pool when none exists (locally by fork, remotely through
   a proxy server), and
4. **delegates** the query to a peer pool manager when it can neither find
   nor create the pool — attaching its own name to the query's visited
   list and decrementing the TTL; "the request is considered to have
   failed when the counter reaches zero".

Like :mod:`repro.core.resource_pool`, this module is pure logic: routing
*decisions* are returned as small result objects and the hosting
deployment (in-process facade, DES, asyncio) executes them, charging
whatever costs it models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import PoolManagerConfig, ResourcePoolConfig
from repro.core.query import Query
from repro.core.resource_pool import ResourcePool
from repro.core.signature import PoolName, pool_name_for
from repro.database.directory import LocalDirectoryService, PoolInstanceEntry
from repro.database.policy import PolicyRegistry
from repro.database.shadow import ShadowAccountRegistry
from repro.database.sharding import WhitePages
from repro.errors import PoolCreationError
from repro.net.address import Endpoint

__all__ = [
    "RouteToPool",
    "FanoutToPools",
    "Delegate",
    "RouteFailed",
    "RoutingDecision",
    "PoolManager",
]


@dataclass(frozen=True)
class RouteToPool:
    """Forward the query to the selected pool instance."""

    entry: PoolInstanceEntry
    query: Query


@dataclass(frozen=True)
class FanoutToPools:
    """Forward the query to every fragment of a split pool and aggregate
    the results (Figure 7: "concurrent searches whose results could then
    be aggregated")."""

    entries: Tuple[PoolInstanceEntry, ...]
    query: Query


@dataclass(frozen=True)
class Delegate:
    """Forward the query to a peer pool manager (TTL already decremented)."""

    peer: Endpoint
    query: Query


@dataclass(frozen=True)
class RouteFailed:
    """The query cannot be routed (TTL exhausted / nothing to create)."""

    query: Query
    reason: str


RoutingDecision = Union[RouteToPool, FanoutToPools, Delegate, RouteFailed]

#: Hook invoked to build a pool instance.  The DES/asyncio deployments
#: override it to spawn a server around the pool; the default builds the
#: in-process object directly ("forks a process" in the paper).
PoolFactory = Callable[[PoolName, Query, int, int], ResourcePool]


class PoolManager:
    """One pool-manager instance.

    Parameters
    ----------
    name:
        This manager's unique name (used in queries' visited lists).
    directory:
        The local directory service tracking pool instances and peers.
    database:
        White pages, consulted when creating pools.
    pool_factory:
        Optional override for how pool instances are materialised.
    """

    def __init__(
        self,
        name: str,
        directory: LocalDirectoryService,
        database: WhitePages,
        *,
        config: Optional[PoolManagerConfig] = None,
        pool_config: Optional[ResourcePoolConfig] = None,
        shadow_registry: Optional[ShadowAccountRegistry] = None,
        policy_registry: Optional[PolicyRegistry] = None,
        pool_factory: Optional[PoolFactory] = None,
        rng: Optional[np.random.Generator] = None,
        pool_endpoint_allocator: Optional[Callable[[PoolName, int], Endpoint]] = None,
    ):
        self.name = name
        self.directory = directory
        self.database = database
        self.config = (config or PoolManagerConfig()).validated()
        self.pool_config = (pool_config or ResourcePoolConfig()).validated()
        self.shadow_registry = shadow_registry
        self.policy_registry = policy_registry
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._pool_factory = pool_factory or self._default_pool_factory
        self._pool_endpoint_allocator = (
            pool_endpoint_allocator or self._default_endpoint
        )
        #: Locally hosted pool objects, by (pool full name, instance number).
        self.local_pools: Dict[Tuple[str, int], ResourcePool] = {}
        #: Deployment hook invoked with a destroyed pool's endpoint so its
        #: server can be unbound (set by DES/asyncio deployments).
        self.pool_unbind_hook: Optional[Callable[[Endpoint], None]] = None
        self.queries_routed = 0
        self.pools_created = 0
        self.delegations = 0

    # -- defaults -----------------------------------------------------------------

    def _default_pool_factory(self, name: PoolName, exemplar: Query,
                              instance: int, replicas: int) -> ResourcePool:
        return ResourcePool(
            name, self.database,
            instance_number=instance, replica_count=replicas,
            config=self.pool_config,
            shadow_registry=self.shadow_registry,
            policy_registry=self.policy_registry,
            exemplar_query=exemplar,
        )

    def _default_endpoint(self, name: PoolName, instance: int) -> Endpoint:
        # Deterministic per-manager port allocation keeps directory entries
        # readable in tests and logs.  The manager name may be an endpoint
        # string; keep only hostname-safe characters.
        safe = "".join(c if c.isalnum() or c in "._-" else "-"
                       for c in self.name).strip("-.") or "pm"
        port = 9000 + (abs(hash((name.full, instance))) % 50000)
        return Endpoint(host=f"poolhost-{safe}", port=port,
                        domain=self.directory.domain)

    # -- the paper's three steps ---------------------------------------------------

    def map_query(self, query: Query) -> PoolName:
        """Step 1: construct the pool name from the sorted rsrc keys."""
        return pool_name_for(query)

    def select_instance(self, name: PoolName
                        ) -> Optional[PoolInstanceEntry]:
        """Step 2: random choice among live instances (paper: "randomly
        selects one of the instances")."""
        entries = self.directory.lookup(name.full)
        if not entries:
            return None
        idx = int(self.rng.integers(0, len(entries)))
        return entries[idx]

    def create_pool(self, name: PoolName, exemplar: Query,
                    *, replicas: int = 1) -> List[PoolInstanceEntry]:
        """Step 3: create ``replicas`` instances of a new pool.

        Every instance shares the same machine cache semantics: the first
        instance walks the white pages and takes the machines; subsequent
        replicas *share* that cache (replicated pools "contain the same
        set of machines").  Raises :class:`PoolCreationError` when the
        walk aggregates zero machines.
        """
        if not self.config.may_create_pools:
            raise PoolCreationError(
                f"pool manager {self.name} may not create pools"
            )
        first = self._pool_factory(name, exemplar, 0, replicas)
        aggregated = first.initialize()
        if aggregated == 0:
            first.destroy()
            raise PoolCreationError(
                f"no machines match pool criteria {name.full!r}"
            )
        instances = [first]
        for i in range(1, replicas):
            replica = self._pool_factory(name, exemplar, i, replicas)
            # Replicas adopt the same machine list without re-taking them
            # (take() is idempotent for the same pool name).
            replica.adopt(first.cache)
            instances.append(replica)
        entries: List[PoolInstanceEntry] = []
        for pool in instances:
            endpoint = self._pool_endpoint_allocator(name, pool.instance_number)
            entry = self.directory.register(
                name.full, pool.instance_number, endpoint
            )
            self.local_pools[(name.full, pool.instance_number)] = pool
            entries.append(entry)
        self.pools_created += len(instances)
        return entries

    # -- routing -----------------------------------------------------------------

    def route(self, query: Query, now: float = 0.0) -> RoutingDecision:
        """Full pool-manager step: map, select, create-or-delegate.

        ``now`` is the deployment's clock, used only by the optional
        on-miss reclamation (``reclaim_on_miss``).
        """
        self.queries_routed += 1
        name = self.map_query(query)
        entries = self.directory.lookup(name.full)
        fragments = tuple(e for e in entries if e.mode == "fragment")
        if fragments:
            return FanoutToPools(entries=fragments, query=query)
        entry = self.select_instance(name)
        if entry is not None:
            return RouteToPool(entry=entry, query=query)
        # No live instance: try to create one.
        if self.config.may_create_pools:
            created = self._try_create(name, query, now)
            if created:
                idx = int(self.rng.integers(0, len(created)))
                return RouteToPool(entry=created[idx], query=query)
        # Cannot create: delegate to a peer not yet visited.
        return self._delegate(query)

    def _try_create(self, name: PoolName, query: Query, now: float
                    ) -> List[PoolInstanceEntry]:
        try:
            return self.create_pool(name, query)
        except PoolCreationError:
            pass
        if not self.config.reclaim_on_miss:
            return []
        # The walk found nothing free; idle aggregations may be hoarding
        # matching machines.  Reclaim and retry once.
        from repro.core.janitor import PoolJanitor
        janitor = PoolJanitor(
            self, idle_timeout_s=self.config.reclaim_idle_timeout_s,
            unbind_hook=self.pool_unbind_hook,
        )
        if not janitor.sweep(now):
            return []
        try:
            return self.create_pool(name, query)
        except PoolCreationError:
            return []

    def _delegate(self, query: Query) -> RoutingDecision:
        visited = set(query.visited_pool_managers) | {self.name}
        if query.ttl <= 0:
            return RouteFailed(
                query=query,
                reason=f"TTL exhausted at pool manager {self.name}",
            )
        peers = [p for p in self.directory.peer_pool_managers()
                 if str(p) not in visited and p.host != self.name]
        if not peers:
            return RouteFailed(
                query=query,
                reason=f"no unvisited peer pool managers at {self.name}",
            )
        idx = int(self.rng.integers(0, len(peers)))
        peer = peers[idx]
        forwarded = query.with_routing(
            ttl=query.ttl - 1,
            visited=tuple(sorted(visited)),
        )
        self.delegations += 1
        return Delegate(peer=peer, query=forwarded)

    # -- splitting (Figure 7) ---------------------------------------------------------

    def split_pool(self, name: PoolName, parts: int
                   ) -> List[PoolInstanceEntry]:
        """Split a locally hosted, unreplicated pool into fragments.

        The original instance is deregistered; fragments are registered
        under the *original* pool name in ``fragment`` mode so that
        subsequent queries fan out across them.
        """
        original = self.local_pools.pop((name.full, 0), None)
        if original is None:
            raise PoolCreationError(
                f"pool manager {self.name} does not host {name.full}#0"
            )
        fragments = original.split(parts)
        self.directory.deregister(name.full, 0)
        entries: List[PoolInstanceEntry] = []
        for i, fragment in enumerate(fragments):
            endpoint = self._pool_endpoint_allocator(fragment.name, i)
            entry = self.directory.register(
                name.full, i, endpoint, mode="fragment"
            )
            self.local_pools[(name.full, i)] = fragment
            entries.append(entry)
        return entries

    # -- local pool access (used by in-process deployments) -------------------------

    def local_pool(self, pool_name: str, instance: int) -> ResourcePool:
        pool = self.local_pools.get((pool_name, instance))
        if pool is None:
            raise PoolCreationError(
                f"pool manager {self.name} does not host {pool_name}#{instance}"
            )
        return pool
