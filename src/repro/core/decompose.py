"""Composite-query decomposition and result reintegration (Section 5.2.1).

"A composite query is one which contains 'or' clauses.  Such queries are
decomposed into multiple basic queries that are processed concurrently by
subsequent stages ...  The process ... is analogous to the fragmentation
of datagrams in TCP/IP; appropriate state information is propagated along
with each query component in order to allow reintegration at the end of
the pipeline."

:func:`decompose` expands the cartesian product of a composite's
alternative groups into basic :class:`~repro.core.query.Query` components,
stamping each with ``(component_index, component_count)``.
:class:`ReintegrationBuffer` is the end-of-pipeline state that collects
component results; its policy mirrors Section 6's QoS discussion —
``first_match`` returns the first success immediately, ``all`` waits for
every component and picks the best.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.language import CompositeQuery
from repro.core.query import Query, QueryResult
from repro.errors import ReintegrationError

__all__ = ["decompose", "ReintegrationBuffer"]


def decompose(composite: CompositeQuery, *, query_id: int, origin: str,
              submitted_at: float, ttl: int) -> List[Query]:
    """Expand a composite into basic components, cheapest-first order.

    The expansion order is deterministic: alternatives are taken in the
    order they appeared in the query text, so "preferred" alternatives
    (listed first) get component index 0.
    """
    combos = list(itertools.product(*composite.groups))
    count = len(combos)
    return [
        Query(clauses=tuple(combo)).with_identity(
            query_id=query_id,
            origin=origin,
            submitted_at=submitted_at,
            component_index=i,
            component_count=count,
            ttl=ttl,
        )
        for i, combo in enumerate(combos)
    ]


@dataclass
class ReintegrationBuffer:
    """Collects the component results of one composite query.

    ``policy``:

    - ``"first_match"`` — complete on the first successful component ("the
      response time for composite queries could be minimized by returning
      the first available match", Section 6); later results are dropped.
    - ``"all"`` — wait for every component; prefer the lowest component
      index among successes (the query's stated preference order).

    Either way, the buffer completes with a failure only after *all*
    components have reported and none succeeded.
    """

    query_id: int
    component_count: int
    policy: str = "first_match"
    _results: Dict[int, QueryResult] = field(default_factory=dict)
    _completed: Optional[QueryResult] = None

    def __post_init__(self) -> None:
        if self.policy not in ("first_match", "all"):
            raise ReintegrationError(f"unknown reintegration policy {self.policy!r}")
        if self.component_count < 1:
            raise ReintegrationError("component_count must be >= 1")

    @property
    def done(self) -> bool:
        return self._completed is not None

    @property
    def result(self) -> QueryResult:
        if self._completed is None:
            raise ReintegrationError("reintegration is not complete")
        return self._completed

    def offer(self, result: QueryResult) -> Optional[QueryResult]:
        """Feed one component result; returns the final result when ready."""
        if result.query_id != self.query_id:
            raise ReintegrationError(
                f"result for query {result.query_id} offered to buffer "
                f"for query {self.query_id}"
            )
        if not (0 <= result.component_index < self.component_count):
            raise ReintegrationError(
                f"component index {result.component_index} out of range "
                f"0..{self.component_count - 1}"
            )
        if result.component_index in self._results:
            raise ReintegrationError(
                f"duplicate result for component {result.component_index}"
            )
        self._results[result.component_index] = result
        if self._completed is not None:
            return None  # late arrival after first_match completion

        if self.policy == "first_match" and result.ok:
            self._completed = result
            return self._completed

        if len(self._results) == self.component_count:
            successes = [r for r in self._results.values() if r.ok]
            if successes:
                best = min(successes, key=lambda r: r.component_index)
            else:
                # Aggregate the component errors for diagnosis.
                errors = "; ".join(
                    f"[{i}] {self._results[i].error}"
                    for i in sorted(self._results)
                )
                best = QueryResult(
                    query_id=self.query_id,
                    component_index=-1 if self.component_count > 1 else 0,
                    component_count=self.component_count,
                    error=f"all components failed: {errors}",
                    completed_at=max(r.completed_at
                                     for r in self._results.values()),
                )
            self._completed = best
            return self._completed
        return None

    @property
    def outstanding(self) -> int:
        return self.component_count - len(self._results)
