"""Legacy shim so ``pip install -e .`` works without the ``wheel`` package
(offline environments).

The only metadata carried here is the optional-dependency sets:
``pip install repro[columnar]`` pulls numpy for the vectorized columnar
match kernel (the engine degrades to the row path with a one-time
warning when numpy is absent).
"""

from setuptools import setup

setup(
    extras_require={
        "columnar": ["numpy>=1.22"],
    },
)
